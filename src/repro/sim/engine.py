"""Discrete-event simulation engine.

This is the substrate that replaces the paper's physical Linux testbed
(Figure 10).  It is a two-tier event scheduler: a 256-slot timer wheel
for the dense near-horizon events that dominate a packet simulation
(serialization completions, ACK clocks, AQM sample ticks — delays
bounded by RTT and sample interval), a binary-heap overflow lane for
sparse far-future events (watchdogs, fault flaps, long timers), and a
virtual clock with helpers for one-shot and periodic callbacks.
Everything else in the repository (links, queues, TCP senders, AQM
update timers) is driven by this engine.

Determinism
-----------
Events scheduled for the same timestamp fire in scheduling order (a
monotonic sequence number breaks ties), so a simulation with a fixed seed
is exactly reproducible run-to-run and platform-to-platform.  Both
scheduler backends (``scheduler="wheel"``, the default, and
``scheduler="heap"``, the reference single-heap path) dispatch in the
identical ``(time, seq)`` total order, so a fixed seed produces
bit-exact ``digest()``-equal results under either; the heap path is kept
selectable for A/B verification.  Compaction (below) only ever removes
cancelled events and re-heapifies; the (time, seq) total order means the
pop sequence is unchanged, so compaction never perturbs results.

The timer wheel
---------------
The wheel divides time into 1/1024-second slots, 256 of them (a ~0.25 s
window).  An event due within the window is pushed onto the mini-heap of
its slot — a plain list of ``(time, seq, Event)`` tuples, so ordering
costs C tuple comparisons over a bucket of a few dozen entries instead
of Python ``Event.__lt__`` calls over one heap of thousands.  Events due
beyond the window go to the overflow heap and are never migrated; the
dispatch loop merges the first live wheel entry, the overflow head and
the stream lane by ``(time, seq)`` at every pop, which preserves the
global total order exactly.  A live wheel entry's absolute slot index
always lies within the current 256-slot window (its time is at least
``now`` and was within the window when pushed), so the wheel scan —
starting from a cached hint and visiting at most 256 slots — always
finds the earliest live entry.

Cancelled events
----------------
Cancellation is lazy: a cancelled event stays in its lane and is skipped
when popped.  Workloads that re-arm timers constantly (every TCP ACK
cancels and reschedules the retransmission timer) can accumulate large
numbers of dead entries, inflating every push/pop.  The simulator counts
cancellations and compacts the lanes in place once the dead fraction
crosses a threshold, keeping scheduling operations proportional to
*live* events.

Event pooling
-------------
Most scheduled callbacks are fire-and-forget — nobody keeps the returned
:class:`Event` handle, so allocating one per packet is pure churn.
:meth:`Simulator.call_later` / :meth:`Simulator.call_at` are the pooled
twins of :meth:`schedule` / :meth:`at`: they return ``None``, draw the
``Event`` from a bounded freelist, and recycle it after dispatch.
Because no reference escapes, a pooled event can never be cancelled or
observed after reuse.  Sequence-number consumption is identical to the
unpooled calls, so pooling never perturbs the (time, seq) schedule.

Event batching
--------------
A component that knows its *own* next event time can avoid the scheduler
entirely: inside a callback it may ask :meth:`Simulator.pending_before`
whether any foreign event sorts before its continuation and, if not (and
within the current :attr:`Simulator.horizon`), handle it inline via
:meth:`Simulator.advance_to` instead of scheduling it.  The bottleneck
:class:`~repro.net.link.Link` drains back-to-back packet transmissions
this way, and :class:`~repro.net.pipe.Pipe` keeps its in-flight packets
on an *arrival train* served by a single pending continuation instead of
one event per packet — which also shrinks the pending-event population
from thousands of entries (every in-flight packet) to a handful, making
every remaining push/pop cheaper.

Bit-exactness rests on two rules.  First, inline handling is only
allowed when the continuation provably sorts before every pending
event, so nothing that *would* have fired earlier is displaced.  Second,
batchers draw their sequence numbers from the same counter at the same
points as the unbatched code (:meth:`Simulator.reserve_seq` /
:meth:`Simulator.at_reserved`), so the ``(time, seq)`` identity of every
event — scheduled or absorbed — is identical in both modes and every
same-timestamp tie breaks the same way.  A batched run therefore
produces bit-exact results (equal ``digest()``\\ s) for a fixed seed.
Absorbed events are counted in :attr:`Simulator.events_batched`; a batch
forced to stop because a foreign event intervened is counted in
:attr:`Simulator.batch_breaks`.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> sim.schedule(1.5, lambda: fired.append(sim.now))
>>> sim.run(until=10.0)
>>> fired
[1.5]
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import CallbackError, SimulationError, WatchdogExceeded
from repro.units import Seconds

__all__ = ["Simulator", "Event", "PeriodicTimer", "Watchdog"]

#: Wheel geometry: 256 slots of 1/1024 s — a ~0.25 s near-horizon window
#: that covers serialization times, paper-scale RTTs and AQM sample
#: intervals.  Power-of-two width so the time→slot multiply is exact.
_WHEEL_SLOTS = 256
_WHEEL_MASK = _WHEEL_SLOTS - 1
_INV_WIDTH = 1024.0
_WIDTH = 1.0 / _INV_WIDTH
#: Horizon for direct wheel placement, as a *delay* from ``now``.  With
#: truncating slot arithmetic, ``idx - base <= (t - now) * _INV_WIDTH + 1``,
#: so any delay under 255 slot-widths is guaranteed to land inside the
#: 256-slot window — one float compare replaces two int conversions on
#: the push hot path.  Delays in the sliver [255, 256) slot-widths go to
#: the overflow heap instead; lane placement never affects pop order.
_WHEEL_SAFE = (_WHEEL_SLOTS - 1) * _WIDTH

_heappush = heapq.heappush

#: Upper bound on the pooled-event freelist; beyond this, recycled
#: events are simply dropped for the GC.
_POOL_MAX = 1024

#: Virtual-time span of one dispatch epoch when an engine tracer is
#: installed: the traced run loop executes in chunks of this many
#: seconds and emits one ``engine_epoch`` lane-occupancy snapshot per
#: chunk.  Chunked ``run`` calls compose exactly (``run(10); run(20)``
#: ≡ ``run(20)``), so chunking never changes results — only how often
#: the loop surfaces for a snapshot.
_TRACE_EPOCH_SPAN = 0.25


def _nop() -> None:  # pragma: no cover - placeholder, never dispatched
    """Callback held by recycled pool events so no user refs are pinned."""


class Event:
    """A scheduled callback.

    Holding a reference to the returned :class:`Event` allows cancellation
    (used e.g. by TCP retransmission timers that are re-armed on every ACK).
    Cancelled events stay in their lane but are skipped when popped; this is
    the standard lazy-deletion scheme and keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim", "recycle")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim = sim
        #: Pool-managed events (``call_later``/``call_at``) are returned
        #: to the freelist after dispatch; never set on events whose
        #: reference escaped to a caller.
        self.recycle = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.sim is not None:
            self.sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {getattr(self.fn, '__name__', self.fn)} {state}>"


#: Wheel/overflow lane entry: compares in C, no ``Event.__lt__`` frames.
_WheelEntry = Tuple[float, int, Event]


class Watchdog:
    """Budget limits for a :meth:`Simulator.run` call.

    A runaway simulation (an event loop that keeps rescheduling itself, or
    a scenario far larger than intended) would otherwise consume the whole
    process.  The watchdog bounds one ``run`` call by total events
    processed and/or host wall-clock seconds; exceeding either raises
    :class:`~repro.errors.WatchdogExceeded` with the virtual time reached.

    The wall clock is sampled every :data:`WALL_CHECK_STRIDE` events to
    keep the per-event overhead negligible.
    """

    WALL_CHECK_STRIDE = 1024

    __slots__ = ("max_events", "max_wall_seconds")

    def __init__(
        self,
        max_events: Optional[int] = None,
        max_wall_seconds: Optional[float] = None,
    ):
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive (got {max_events})")
        if max_wall_seconds is not None and max_wall_seconds <= 0:
            raise ValueError(
                f"max_wall_seconds must be positive (got {max_wall_seconds})"
            )
        self.max_events = max_events
        self.max_wall_seconds = max_wall_seconds


class Simulator:
    """Event-driven virtual-time simulator.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.  Defaults to 0.
    scheduler:
        Event-core backend: ``"wheel"`` (default) uses the 256-slot timer
        wheel with heap overflow; ``"heap"`` is the reference single
        binary heap.  Both dispatch in the identical ``(time, seq)``
        order — results are bit-exact either way; the heap is kept for
        A/B verification and benchmarking.

    Notes
    -----
    The engine makes no assumptions about what the callbacks do; components
    hold a reference to the simulator and schedule their own continuations.
    Time is a float in seconds.  The paper's experiments span at most a few
    hundred seconds at microsecond-scale event granularity, comfortably
    within double precision.
    """

    #: Minimum number of pending cancelled events before a compaction is
    #: considered.  Below this the dead weight is negligible and the scan
    #: would cost more than it saves.
    COMPACT_THRESHOLD = 1024

    def __init__(self, start_time: float = 0.0, scheduler: str = "wheel"):
        if scheduler not in ("heap", "wheel"):
            raise ValueError(
                f"scheduler must be 'heap' or 'wheel' (got {scheduler!r})"
            )
        self.scheduler = scheduler
        self.now: float = start_time
        #: Reference lane (scheduler="heap"): a single binary heap of
        #: :class:`Event` objects.
        self._heap: List[Event] = []
        #: Stream lane: (time, seq, fn, args) tuples for batcher
        #: continuations (see :meth:`stream_schedule`).  Shared by both
        #: scheduler backends.
        self._streams: List[Tuple[float, int, Callable[..., Any], tuple]] = []
        #: Timer wheel (scheduler="wheel"): per-slot mini-heaps of
        #: ``(time, seq, Event)`` plus a far-future overflow heap.
        self._wheel_on = scheduler == "wheel"
        self._epoch = start_time
        self._wheel: List[List[_WheelEntry]] = [[] for _ in range(_WHEEL_SLOTS)]
        self._overflow: List[_WheelEntry] = []
        self._wheel_count = 0
        #: Lower bound on the absolute slot index of the earliest wheel
        #: entry; lowered on push, advanced by the head scan.
        self._hint = 0
        #: Freelist for pool-managed events (:meth:`call_later`).
        self._pool: List[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled_pending = 0
        self._compactions = 0
        self._events_batched = 0
        self._batch_breaks = 0
        #: Freelist accounting for the pooled entry points: a hit reused
        #: a recycled Event, a miss allocated a fresh one.
        self._pool_hits = 0
        self._pool_misses = 0
        self._horizon: Optional[float] = None
        self._running = False
        self._watchdog: Optional[Watchdog] = None
        #: Optional telemetry sink (duck-typed; see repro.obs.trace).
        #: The engine only ever *emits* into it — tracers observe, they
        #: never schedule (the OBS static-analysis rule).
        self._tracer: Optional[Any] = None
        self._trace_epochs = 0

    def set_tracer(self, tracer: Optional[Any]) -> None:
        """Install (or clear, with ``None``) an engine-event tracer.

        With a tracer installed, :meth:`run` executes in virtual-time
        chunks of :data:`_TRACE_EPOCH_SPAN` seconds and emits one
        ``engine_epoch`` snapshot (lane occupancy, pool and batching
        counters) per chunk.  Chunked runs compose exactly, so results
        are bit-identical with tracing on or off; only the run loop's
        granularity — and hence counters like ``batch_breaks``, which
        count horizon-bounded batching — may differ.  Callers should
        pass tracers through :func:`repro.obs.trace.engine_tracer` so
        the category-subscription check stays in the observability
        layer.
        """
        self._tracer = tracer

    def set_watchdog(
        self,
        max_events: Optional[int] = None,
        max_wall_seconds: Optional[float] = None,
    ) -> None:
        """Install (or, with no arguments, remove) a run budget.

        Subsequent :meth:`run` calls are each limited to ``max_events``
        processed events and ``max_wall_seconds`` of host time; exceeding
        either raises :class:`~repro.errors.WatchdogExceeded`.
        """
        if max_events is None and max_wall_seconds is None:
            self._watchdog = None
        else:
            self._watchdog = Watchdog(max_events, max_wall_seconds)

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: Seconds, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback
        after all events already scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.at(self.now + delay, fn, *args)

    def at(self, time: Seconds, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before current time {self.now}"
            )
        ev = Event(time, next(self._seq), fn, args, sim=self)
        if self._wheel_on:
            if time - self.now < _WHEEL_SAFE:
                idx = int((time - self._epoch) * _INV_WIDTH)
                _heappush(self._wheel[idx & _WHEEL_MASK], (time, ev.seq, ev))
                self._wheel_count += 1
                if idx < self._hint:
                    self._hint = idx
            else:
                _heappush(self._overflow, (time, ev.seq, ev))
        else:
            _heappush(self._heap, ev)
        return ev

    def call_later(self, delay: Seconds, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, pooled ``Event``.

        Identical (time, seq) semantics to :meth:`schedule`, but the
        event object is drawn from a bounded freelist and recycled after
        dispatch, cutting allocator churn on per-packet hot paths.  The
        caller cannot cancel the event — use :meth:`schedule` when a
        handle is needed.  (The lane push is inlined here rather than
        delegated: this is the engine's hottest entry point and the
        extra frames are measurable.)
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        seq = next(self._seq)
        pool = self._pool
        if pool:
            # Freelisted events keep ``recycle=True`` for their lifetime,
            # so reuse touches only the four live fields.
            ev = pool.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            self._pool_hits += 1
        else:
            ev = Event(time, seq, fn, args, sim=self)
            ev.recycle = True
            self._pool_misses += 1
        if self._wheel_on:
            if delay < _WHEEL_SAFE:
                idx = int((time - self._epoch) * _INV_WIDTH)
                _heappush(self._wheel[idx & _WHEEL_MASK], (time, seq, ev))
                self._wheel_count += 1
                if idx < self._hint:
                    self._hint = idx
            else:
                _heappush(self._overflow, (time, seq, ev))
        else:
            _heappush(self._heap, ev)

    def call_at(self, time: Seconds, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`at`: no handle, pooled ``Event``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before current time {self.now}"
            )
        pool = self._pool
        seq = next(self._seq)
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            self._pool_hits += 1
        else:
            ev = Event(time, seq, fn, args, sim=self)
            ev.recycle = True
            self._pool_misses += 1
        if self._wheel_on:
            if time - self.now < _WHEEL_SAFE:
                idx = int((time - self._epoch) * _INV_WIDTH)
                _heappush(self._wheel[idx & _WHEEL_MASK], (time, seq, ev))
                self._wheel_count += 1
                if idx < self._hint:
                    self._hint = idx
            else:
                _heappush(self._overflow, (time, seq, ev))
        else:
            _heappush(self._heap, ev)

    # ------------------------------------------------------------------
    # Cancelled-event accounting
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; triggers compaction past the
        threshold once dead entries outnumber live ones."""
        self._cancelled_pending += 1
        if self._cancelled_pending >= self.COMPACT_THRESHOLD:
            size = (
                self._wheel_count + len(self._overflow)
                if self._wheel_on
                else len(self._heap)
            )
            if self._cancelled_pending * 2 >= size:
                self.compact()

    def compact(self) -> int:
        """Drop cancelled events from the lanes; returns how many were removed.

        The lane lists are mutated in place (``run`` holds local
        references to them), and re-heapified.  Safe to call at any time,
        including from inside an event callback; pop order is unaffected
        because events are totally ordered by (time, seq).
        """
        removed = 0
        if self._wheel_on:
            count = 0
            for bucket in self._wheel:
                if not bucket:
                    continue
                before = len(bucket)
                bucket[:] = [e for e in bucket if not e[2].cancelled]
                dropped = before - len(bucket)
                if dropped:
                    removed += dropped
                    heapq.heapify(bucket)
                count += len(bucket)
            self._wheel_count = count
            overflow = self._overflow
            before = len(overflow)
            overflow[:] = [e for e in overflow if not e[2].cancelled]
            dropped = before - len(overflow)
            if dropped:
                removed += dropped
                heapq.heapify(overflow)
        else:
            heap = self._heap
            before = len(heap)
            heap[:] = [ev for ev in heap if not ev.cancelled]
            removed = before - len(heap)
            if removed:
                heapq.heapify(heap)
        if removed:
            self._compactions += 1
        self._cancelled_pending = 0
        return removed

    # ------------------------------------------------------------------
    # Lane heads (shared by peek/step/pending_before; run() inlines this)
    # ------------------------------------------------------------------
    def _find_bucket(self) -> Optional[List[_WheelEntry]]:
        """Scan to the first wheel bucket with a live head and return it.

        Pops lazily-cancelled heads on the way (exactly as the dispatch
        loop would) and advances :attr:`_hint`.  Returns ``None`` when
        the wheel holds no live entries.  Every live entry's absolute
        slot index lies in ``[base, base + 256)`` (see module docstring),
        so a single 256-slot sweep starting at ``max(hint, base)`` is
        exhaustive.
        """
        if not self._wheel_count:
            return None
        wheel = self._wheel
        heappop = heapq.heappop
        base = int((self.now - self._epoch) * _INV_WIDTH)
        a = self._hint
        if a < base:
            a = base
        stop = a + _WHEEL_SLOTS
        count = self._wheel_count
        while a < stop:
            bucket = wheel[a & _WHEEL_MASK]
            while bucket:
                if bucket[0][2].cancelled:
                    heappop(bucket)
                    count -= 1
                    if self._cancelled_pending > 0:
                        self._cancelled_pending -= 1
                else:
                    self._wheel_count = count
                    self._hint = a
                    return bucket
            a += 1
        self._wheel_count = count
        self._hint = a
        return None

    def _clean_overflow(self) -> None:
        """Pop lazily-cancelled events off the overflow heap's head."""
        overflow = self._overflow
        while overflow and overflow[0][2].cancelled:
            heapq.heappop(overflow)
            if self._cancelled_pending > 0:
                self._cancelled_pending -= 1

    # ------------------------------------------------------------------
    # Inline event batching (see module docstring, "Event batching")
    # ------------------------------------------------------------------
    def peek(self) -> Optional[Tuple[float, int]]:
        """``(time, seq)`` of the next pending event, or None if idle.

        Considers every lane (wheel + overflow or heap, plus the stream
        lane).  Lazily-cancelled events at the lane heads are discarded
        on the way, exactly as the run loop would skip them, so peeking
        never changes which callbacks fire or when.  The ``seq`` lets a
        batcher compare its own *reserved* event identity
        lexicographically — the exact tie-break the dispatch loop applies
        at equal timestamps.
        """
        best: Optional[Tuple[float, int]] = None
        if self._wheel_on:
            bucket = self._find_bucket()
            if bucket:
                best = (bucket[0][0], bucket[0][1])
            self._clean_overflow()
            overflow = self._overflow
            if overflow:
                cand = (overflow[0][0], overflow[0][1])
                if best is None or cand < best:
                    best = cand
        else:
            heap = self._heap
            while heap and heap[0].cancelled:
                heapq.heappop(heap)
                if self._cancelled_pending > 0:
                    self._cancelled_pending -= 1
            if heap:
                best = (heap[0].time, heap[0].seq)
        streams = self._streams
        if streams:
            cand = (streams[0][0], streams[0][1])
            if best is None or cand < best:
                best = cand
        return best

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending (non-cancelled) event, or None."""
        head = self.peek()
        return None if head is None else head[0]

    def pending_before(self, time: float, seq: int) -> bool:
        """True iff a pending event sorts strictly before ``(time, seq)``.

        The batchers' foreign-event test: a continuation with identity
        ``(time, seq)`` may be handled inline only when nothing else can
        fire first.  Spans every lane and discards lazily-cancelled lane
        heads on the way, exactly as :meth:`peek` does.
        """
        if self._wheel_on:
            bucket = self._find_bucket()
            if bucket:
                head = bucket[0]
                if head[0] < time or (head[0] == time and head[1] < seq):
                    return True
            self._clean_overflow()
            overflow = self._overflow
            if overflow:
                entry = overflow[0]
                if entry[0] < time or (entry[0] == time and entry[1] < seq):
                    return True
        else:
            heap = self._heap
            while heap and heap[0].cancelled:
                heapq.heappop(heap)
                if self._cancelled_pending > 0:
                    self._cancelled_pending -= 1
            if heap:
                ev = heap[0]
                if ev.time < time or (ev.time == time and ev.seq < seq):
                    return True
        streams = self._streams
        if streams:
            s = streams[0]
            if s[0] < time or (s[0] == time and s[1] < seq):
                return True
        return False

    def reserve_seq(self) -> int:
        """Claim the sequence number the next scheduled event would get.

        The batching contract: a batcher reserves a seq at *exactly* the
        point the unbatched code would have called :meth:`schedule`, so
        the sequence-number stream — and therefore every same-timestamp
        tie-break — is identical whether events are heaped, streamed or
        absorbed.  A reserved seq is either spent via
        :meth:`stream_schedule` (the batch broke; the continuation waits
        its turn in the stream lane) or dropped (the continuation was
        handled inline via :meth:`advance_to`).
        """
        return next(self._seq)

    def at_reserved(
        self, time: Seconds, seq: int, fn: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule an event carrying a seq from :meth:`reserve_seq`.

        The unbatched twin of :meth:`stream_schedule`: components that
        reserve their continuation seq up front use this when batching is
        off, so the event lands in exactly the (time, seq) slot the
        batched run would have given it.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before current time {self.now}"
            )
        ev = Event(time, seq, fn, args, sim=self)
        if self._wheel_on:
            if time - self.now < _WHEEL_SAFE:
                idx = int((time - self._epoch) * _INV_WIDTH)
                _heappush(self._wheel[idx & _WHEEL_MASK], (time, seq, ev))
                self._wheel_count += 1
                if idx < self._hint:
                    self._hint = idx
            else:
                _heappush(self._overflow, (time, seq, ev))
        else:
            _heappush(self._heap, ev)
        return ev

    def stream_schedule(
        self, time: Seconds, seq: int, fn: Callable[..., Any], *args: Any
    ) -> None:
        """Schedule a batcher continuation in the stream lane.

        The stream lane is a second, small heap of plain ``(time, seq,
        fn, args)`` tuples that the dispatch loop merges with the other
        lanes in exact ``(time, seq)`` order.  Batchers (the link's
        transmission drain, pipe arrival trains) route their per-packet
        continuations here: tuples compare in C (no :meth:`Event.__lt__`
        round-trips), nothing is allocated per event, and the lane stays
        a few entries deep — one pending continuation per batcher —
        regardless of how many packets are in flight.  Entries cannot be
        cancelled; ``seq`` must come from :meth:`reserve_seq` so the
        merged order is identical to the unbatched schedule.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before current time {self.now}"
            )
        heapq.heappush(self._streams, (time, seq, fn, args))

    def advance_to(self, time: Seconds) -> None:
        """Move the clock forward inside a callback, absorbing one event.

        This is the event-batching primitive: a component that has proven
        (via :meth:`pending_before` and :attr:`horizon`) that nothing
        else can fire before ``time`` may advance the clock itself and
        handle its continuation inline instead of scheduling it.  Each
        call counts one absorbed event in :attr:`events_batched`.
        """
        if time < self.now:
            raise ValueError(
                f"cannot advance backwards to t={time} from t={self.now}"
            )
        self.now = time
        self._events_batched += 1

    def note_batch_break(self) -> None:
        """Record that a batch had to stop because an event intervened.

        Called by batching components (the link) when they fall back to
        scheduling a real event mid-drain; exposed as
        :attr:`batch_breaks` so batching efficiency is observable.
        """
        self._batch_breaks += 1

    @property
    def horizon(self) -> Optional[float]:
        """The ``until`` bound of the :meth:`run` call currently executing.

        ``None`` outside :meth:`run` (including :meth:`step`), which
        disables inline batching — a batcher may never advance the clock
        past the point the run loop has been asked to stop at.
        """
        return self._horizon

    def every(
        self,
        interval: Seconds,
        fn: Callable[..., Any],
        *args: Any,
        start_delay: Optional[Seconds] = None,
    ) -> "PeriodicTimer":
        """Run ``fn(*args)`` every ``interval`` seconds until cancelled.

        The first firing is after ``start_delay`` (default: one interval).
        Used for AQM update timers (the paper's ``T`` = 32 ms / 16 ms).
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive (got {interval})")
        timer = PeriodicTimer(self, interval, fn, args)
        timer.start(start_delay if start_delay is not None else interval)
        return timer

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Seconds) -> None:
        """Process events in timestamp order until the clock reaches ``until``.

        The clock is left exactly at ``until`` so back-to-back ``run`` calls
        compose: ``run(10); run(20)`` is equivalent to ``run(20)``.

        If a callback raises, the exception propagates wrapped in a
        :class:`~repro.errors.CallbackError` carrying the event's virtual
        time and callback name (structured :class:`SimulationError`\\ s pass
        through with their sim-time filled in); ``_running`` is always
        reset so the simulator stays usable, with the clock left at the
        failing event's time.
        """
        if until < self.now:
            raise ValueError(f"cannot run backwards to t={until} from t={self.now}")
        if self._tracer is not None:
            self._traced_run(until)
            return
        if self._wheel_on:
            self._run_wheel(until)
            return
        self._run_heap(until)

    def _traced_run(self, until: float) -> None:
        """Run to ``until`` in epoch chunks, snapshotting lane stats.

        The actual dispatching is delegated to the untraced backend loop
        (:meth:`_run_wheel` / :meth:`_run_heap`) one
        :data:`_TRACE_EPOCH_SPAN`-sized chunk at a time; between chunks
        — never between two events — an ``engine_epoch`` event records
        wheel/overflow/stream/heap occupancy and the pool and batching
        counters.  Because back-to-back ``run`` calls compose exactly
        and batching is digest-invariant (batch boundaries at chunk
        horizons only perturb the batching *counters*, which are not
        part of any digest), the dispatch order — and therefore every
        result bit — is identical to an untraced run.
        """
        runner = self._run_wheel if self._wheel_on else self._run_heap
        tracer = self._tracer
        while True:
            head = self.peek_time()
            if head is None or head > until:
                stop = until
            else:
                start = head if head > self.now else self.now
                stop = start + _TRACE_EPOCH_SPAN
                if stop > until:
                    stop = until
            runner(stop)
            self._trace_epochs += 1
            if tracer is not None:
                tracer.emit(
                    "engine",
                    "engine_epoch",
                    self.now,
                    {
                        "epoch": self._trace_epochs,
                        "scheduler": self.scheduler,
                        "wheel": self._wheel_count,
                        "overflow": len(self._overflow),
                        "stream": len(self._streams),
                        "heap": len(self._heap),
                        "pool_free": len(self._pool),
                        "pool_hits": self._pool_hits,
                        "pool_misses": self._pool_misses,
                        "events_processed": self._events_processed,
                        "events_batched": self._events_batched,
                        "batch_breaks": self._batch_breaks,
                        "cancelled_pending": self._cancelled_pending,
                        "compactions": self._compactions,
                    },
                )
            if self.now >= until:
                return

    def _run_heap(self, until: float) -> None:
        """The heap-backend run loop; same contract as :meth:`run`."""
        watchdog = self._watchdog
        event_budget = (
            self._events_processed + watchdog.max_events
            if watchdog is not None and watchdog.max_events is not None
            else None
        )
        wall_limit = watchdog.max_wall_seconds if watchdog is not None else None
        # repro: allow[DET] watchdog wall-time budget; never feeds simulation state
        wall_start = time.monotonic() if wall_limit is not None else 0.0
        self._running = True
        self._horizon = until
        # Hot loop: the engine spends essentially all of a simulation here,
        # so the per-event work is kept to heap ops + the callback itself.
        # Heap, pop and clock access are bound to locals, the dispatch
        # wrapper is inlined (one fewer Python frame per event), and the
        # budget checks are single comparisons that short-circuit when no
        # watchdog is installed.  The general event heap and the stream
        # lane (batcher continuations, see stream_schedule) are merged in
        # exact (time, seq) order.
        heap = self._heap
        streams = self._streams
        pool = self._pool
        heappop = heapq.heappop
        # repro: allow[DET] hot-loop local for the watchdog's wall-time check only
        monotonic = time.monotonic
        stride = Watchdog.WALL_CHECK_STRIDE
        processed = self._events_processed
        fn: Optional[Callable[..., Any]] = None
        try:
            while True:
                while heap and heap[0].cancelled:
                    heappop(heap)
                    if self._cancelled_pending > 0:
                        self._cancelled_pending -= 1
                if streams and (
                    not heap
                    or streams[0][0] < heap[0].time
                    or (
                        streams[0][0] == heap[0].time
                        and streams[0][1] < heap[0].seq
                    )
                ):
                    entry = streams[0]
                    t = entry[0]
                    if t > until:
                        break
                    heappop(streams)
                    fn = entry[2]
                    self.now = t
                    fn(*entry[3])
                elif heap:
                    ev = heap[0]
                    t = ev.time
                    if t > until:
                        break
                    heappop(heap)
                    fn = ev.fn
                    self.now = t
                    fn(*ev.args)
                    if ev.recycle:
                        ev.fn = _nop
                        ev.args = ()
                        if len(pool) < _POOL_MAX:
                            pool.append(ev)
                else:
                    break
                processed += 1
                if event_budget is not None and processed >= event_budget:
                    raise WatchdogExceeded(
                        f"event budget of {watchdog.max_events} events exhausted "
                        f"before reaching t={until}",
                        sim_time=self.now,
                        component="Simulator",
                        context={"events_processed": processed},
                    )
                if (
                    wall_limit is not None
                    and processed % stride == 0
                    and monotonic() - wall_start > wall_limit
                ):
                    raise WatchdogExceeded(
                        f"wall-clock budget of {wall_limit}s exhausted "
                        f"before reaching t={until}",
                        sim_time=self.now,
                        component="Simulator",
                        context={"wall_seconds": monotonic() - wall_start},
                    )
            self.now = until
        except SimulationError as exc:
            # Already structured (watchdog, invariant checker, nested
            # engine, ...); just fill in the virtual time if the raiser
            # could not.  self.now is preferred over the event's own time:
            # a batching callback may have advanced the clock past it.
            if exc.sim_time is None and fn is not None:
                exc.sim_time = self.now
            raise
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            name = getattr(fn, "__qualname__", None) or getattr(
                fn, "__name__", repr(fn)
            )
            raise CallbackError(
                f"event callback {name!r} raised {type(exc).__name__}: {exc}",
                sim_time=self.now,
                callback=name,
                component="Simulator",
            ) from exc
        finally:
            self._events_processed = processed
            self._running = False
            self._horizon = None

    def _run_wheel(self, until: float) -> None:
        """The wheel-backend run loop; same contract as :meth:`run`.

        Per event: scan to the first live wheel entry (cached hint, at
        most one 256-slot sweep), clean the overflow head, three-way
        merge wheel/overflow/stream heads by ``(time, seq)``, dispatch,
        recycle pooled events.  The scan is inlined — the engine spends
        essentially the whole simulation here, and with the hint warm the
        common case is a single non-empty bucket probe.
        """
        watchdog = self._watchdog
        event_budget = (
            self._events_processed + watchdog.max_events
            if watchdog is not None and watchdog.max_events is not None
            else None
        )
        wall_limit = watchdog.max_wall_seconds if watchdog is not None else None
        # repro: allow[DET] watchdog wall-time budget; never feeds simulation state
        wall_start = time.monotonic() if wall_limit is not None else 0.0
        self._running = True
        self._horizon = until
        wheel = self._wheel
        overflow = self._overflow
        streams = self._streams
        pool = self._pool
        epoch = self._epoch
        heappop = heapq.heappop
        # repro: allow[DET] hot-loop local for the watchdog's wall-time check only
        monotonic = time.monotonic
        stride = Watchdog.WALL_CHECK_STRIDE
        processed = self._events_processed
        fn: Optional[Callable[..., Any]] = None
        try:
            while True:
                # -- earliest live wheel entry (inlined _find_bucket) --
                bucket: Optional[List[_WheelEntry]] = None
                a = 0
                if self._wheel_count:
                    base = int((self.now - epoch) * _INV_WIDTH)
                    a = self._hint
                    if a < base:
                        a = base
                    stop = a + _WHEEL_SLOTS
                    count = self._wheel_count
                    while a < stop:
                        b = wheel[a & _WHEEL_MASK]
                        while b:
                            if b[0][2].cancelled:
                                heappop(b)
                                count -= 1
                                if self._cancelled_pending > 0:
                                    self._cancelled_pending -= 1
                            else:
                                bucket = b
                                break
                        if bucket is not None:
                            break
                        a += 1
                    self._wheel_count = count
                    self._hint = a
                # -- three-way (time, seq) merge -----------------------
                # The overflow head may be lazily cancelled; it is only
                # discarded when it reaches the winner position (below),
                # so dead far-future timers accumulate and trip the
                # auto-compactor instead of being drained one per event.
                src = 0
                t = 0.0
                s = 0
                if bucket is not None:
                    head = bucket[0]
                    t = head[0]
                    s = head[1]
                    src = 1
                if overflow:
                    entry = overflow[0]
                    if src == 0 or entry[0] < t or (entry[0] == t and entry[1] < s):
                        t = entry[0]
                        s = entry[1]
                        src = 2
                if streams:
                    sentry = streams[0]
                    if src == 0 or sentry[0] < t or (sentry[0] == t and sentry[1] < s):
                        t = sentry[0]
                        src = 3
                if src == 0:
                    break
                if src == 2 and overflow[0][2].cancelled:
                    heappop(overflow)
                    if self._cancelled_pending > 0:
                        self._cancelled_pending -= 1
                    continue
                if t > until:
                    # The merge winner is the global minimum, so nothing
                    # can fire before the horizon — the run is done.
                    break
                if src == 1:
                    # Bucket-drain fast path: every entry in this bucket
                    # sorts before every entry of any later bucket (the
                    # slot partitions time), so consecutive pops need no
                    # rescan — only ``until`` and the overflow/stream
                    # heads (which callbacks may refill) can preempt,
                    # checked per pop.  This amortises the scan + merge
                    # over the bucket's whole occupancy, which is where
                    # the wheel beats per-event heap maintenance.
                    assert bucket is not None
                    limit = (a + 1) * _WIDTH + epoch
                    if until < limit:
                        limit = until
                    while bucket:
                        entry = bucket[0]
                        t = entry[0]
                        if t > limit:
                            break
                        if overflow:
                            oh = overflow[0]
                            if oh[0] < t or (oh[0] == t and oh[1] < entry[1]):
                                break
                        if streams:
                            sh = streams[0]
                            if sh[0] < t or (sh[0] == t and sh[1] < entry[1]):
                                break
                        heappop(bucket)
                        self._wheel_count -= 1
                        ev = entry[2]
                        if ev.cancelled:
                            if self._cancelled_pending > 0:
                                self._cancelled_pending -= 1
                            continue
                        fn = ev.fn
                        self.now = t
                        fn(*ev.args)
                        if ev.recycle:
                            ev.fn = _nop
                            ev.args = ()
                            if len(pool) < _POOL_MAX:
                                pool.append(ev)
                        processed += 1
                        if event_budget is not None and processed >= event_budget:
                            raise WatchdogExceeded(
                                f"event budget of {watchdog.max_events} events "
                                f"exhausted before reaching t={until}",
                                sim_time=self.now,
                                component="Simulator",
                                context={"events_processed": processed},
                            )
                        if (
                            wall_limit is not None
                            and processed % stride == 0
                            and monotonic() - wall_start > wall_limit
                        ):
                            raise WatchdogExceeded(
                                f"wall-clock budget of {wall_limit}s exhausted "
                                f"before reaching t={until}",
                                sim_time=self.now,
                                component="Simulator",
                                context={"wall_seconds": monotonic() - wall_start},
                            )
                    continue
                if src == 3:
                    sentry = heappop(streams)
                    fn = sentry[2]
                    self.now = t
                    fn(*sentry[3])
                else:
                    ev = heappop(overflow)[2]
                    fn = ev.fn
                    self.now = t
                    fn(*ev.args)
                    if ev.recycle:
                        ev.fn = _nop
                        ev.args = ()
                        if len(pool) < _POOL_MAX:
                            pool.append(ev)
                processed += 1
                if event_budget is not None and processed >= event_budget:
                    raise WatchdogExceeded(
                        f"event budget of {watchdog.max_events} events exhausted "
                        f"before reaching t={until}",
                        sim_time=self.now,
                        component="Simulator",
                        context={"events_processed": processed},
                    )
                if (
                    wall_limit is not None
                    and processed % stride == 0
                    and monotonic() - wall_start > wall_limit
                ):
                    raise WatchdogExceeded(
                        f"wall-clock budget of {wall_limit}s exhausted "
                        f"before reaching t={until}",
                        sim_time=self.now,
                        component="Simulator",
                        context={"wall_seconds": monotonic() - wall_start},
                    )
            self.now = until
        except SimulationError as exc:
            # Already structured (watchdog, invariant checker, nested
            # engine, ...); just fill in the virtual time if the raiser
            # could not.  self.now is preferred over the event's own time:
            # a batching callback may have advanced the clock past it.
            if exc.sim_time is None and fn is not None:
                exc.sim_time = self.now
            raise
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            name = getattr(fn, "__qualname__", None) or getattr(
                fn, "__name__", repr(fn)
            )
            raise CallbackError(
                f"event callback {name!r} raised {type(exc).__name__}: {exc}",
                sim_time=self.now,
                callback=name,
                component="Simulator",
            ) from exc
        finally:
            self._events_processed = processed
            self._running = False
            self._horizon = None

    def step(self) -> bool:
        """Process a single event.  Returns False when nothing is pending.

        Merges the lanes exactly as :meth:`run` does.  No run horizon is
        in effect, so batchers cannot absorb events inline — each
        continuation is dispatched one per call.  Callback failures
        receive the same structured wrapping as in :meth:`run`.
        """
        streams = self._streams
        if self._wheel_on:
            bucket = self._find_bucket()
            self._clean_overflow()
            overflow = self._overflow
            src = 0
            t = 0.0
            s = 0
            if bucket:
                t, s = bucket[0][0], bucket[0][1]
                src = 1
            if overflow:
                entry = overflow[0]
                if src == 0 or entry[0] < t or (entry[0] == t and entry[1] < s):
                    t, s = entry[0], entry[1]
                    src = 2
            if streams:
                sentry = streams[0]
                if src == 0 or sentry[0] < t or (sentry[0] == t and sentry[1] < s):
                    src = 3
            if src == 0:
                return False
            if src == 3:
                when, _seq, fn, args = heapq.heappop(streams)
                self.now = when
                self._dispatch(fn, args, when)
            else:
                if src == 1:
                    assert bucket is not None
                    ev = heapq.heappop(bucket)[2]
                    self._wheel_count -= 1
                else:
                    ev = heapq.heappop(overflow)[2]
                self.now = ev.time
                self._dispatch(ev.fn, ev.args, ev.time)
                self._recycle(ev)
            self._events_processed += 1
            return True
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            if self._cancelled_pending > 0:
                self._cancelled_pending -= 1
        if streams and (
            not heap
            or streams[0][0] < heap[0].time
            or (streams[0][0] == heap[0].time and streams[0][1] < heap[0].seq)
        ):
            when, _seq, fn, args = heapq.heappop(streams)
            self.now = when
            self._dispatch(fn, args, when)
            self._events_processed += 1
            return True
        if heap:
            ev = heapq.heappop(heap)
            self.now = ev.time
            self._dispatch(ev.fn, ev.args, ev.time)
            self._recycle(ev)
            self._events_processed += 1
            return True
        return False

    def _recycle(self, ev: Event) -> None:
        """Return a pool-managed event to the freelist after dispatch."""
        if ev.recycle:
            ev.fn = _nop
            ev.args = ()
            if len(self._pool) < _POOL_MAX:
                self._pool.append(ev)

    def _dispatch(self, fn: Callable[..., Any], args: tuple, when: float) -> None:
        """Run one callback, converting failures into structured errors."""
        try:
            fn(*args)
        except SimulationError as exc:
            # Already structured (invariant checker, nested engine, ...);
            # just fill in the virtual time if the raiser could not.
            if exc.sim_time is None:
                exc.sim_time = when
            raise
        except Exception as exc:
            name = getattr(fn, "__qualname__", None) or getattr(
                fn, "__name__", repr(fn)
            )
            raise CallbackError(
                f"event callback {name!r} raised {type(exc).__name__}: {exc}",
                sim_time=when,
                callback=name,
                component="Simulator",
            ) from exc

    @property
    def pending_events(self) -> int:
        """Number of events still queued — lane entries (including
        lazily-cancelled ones) plus pending stream-lane continuations."""
        if self._wheel_on:
            return self._wheel_count + len(self._overflow) + len(self._streams)
        return len(self._heap) + len(self._streams)

    @property
    def cancelled_pending(self) -> int:
        """Lazily-cancelled events still sitting in the lanes.

        An upper bound: events cancelled *after* they fired (or after the
        lanes were already drained of them) are counted until the next
        compaction resets the tally.
        """
        return self._cancelled_pending

    @property
    def compactions(self) -> int:
        """Number of lane compactions performed so far."""
        return self._compactions

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def events_batched(self) -> int:
        """Events absorbed inline by batching (:meth:`advance_to`).

        ``events_processed + events_batched`` is the workload's *logical*
        event count — what an unbatched run would have dispatched.
        """
        return self._events_batched

    @property
    def batch_breaks(self) -> int:
        """Times a batch stopped early because a foreign event intervened."""
        return self._batch_breaks

    @property
    def pool_hits(self) -> int:
        """Pooled scheduling calls served from the Event freelist."""
        return self._pool_hits

    @property
    def pool_misses(self) -> int:
        """Pooled scheduling calls that had to allocate a fresh Event."""
        return self._pool_misses

    def register_metrics(self, registry: Any) -> None:
        """Register the engine's counters under the ``engine.`` prefix.

        ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry`
        (duck-typed here so the engine never imports the observability
        layer); the provider is evaluated lazily at snapshot time.
        """
        registry.register_provider("engine", self._metrics_snapshot)

    def _metrics_snapshot(self) -> Dict[str, Any]:
        """Flat end-of-run metric values for :meth:`register_metrics`."""
        return {
            "scheduler": self.scheduler,
            "events_processed": self._events_processed,
            "events_batched": self._events_batched,
            "batch_breaks": self._batch_breaks,
            "cancelled_pending": self._cancelled_pending,
            "compactions": self._compactions,
            "pending_events": self.pending_events,
            "pool_free": len(self._pool),
            "pool_hits": self._pool_hits,
            "pool_misses": self._pool_misses,
            "trace_epochs": self._trace_epochs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator t={self.now:.6f} scheduler={self.scheduler} "
            f"pending={self.pending_events}>"
        )


class PeriodicTimer:
    """Re-arming timer produced by :meth:`Simulator.every`."""

    __slots__ = (
        "_sim", "interval", "_fn", "_args", "_event", "_stopped", "fires", "_jitter",
    )

    def __init__(self, sim: Simulator, interval: float, fn: Callable[..., Any], args: tuple):
        self._sim = sim
        self.interval = interval
        self._fn = fn
        self._args = args
        self._event: Optional[Event] = None
        self._stopped = False
        self.fires = 0
        self._jitter: Optional[Callable[[], float]] = None

    def start(self, delay: float) -> None:
        self._event = self._sim.schedule(delay, self._fire)

    def set_jitter(self, jitter: Optional[Callable[[], float]]) -> None:
        """Install (or clear, with ``None``) a per-firing delay perturbation.

        ``jitter()`` is sampled before each re-arm and added to the
        nominal interval; the result is floored at 0.  Used by the fault
        injector to model an AQM update timer that drifts under load.
        """
        self._jitter = jitter

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fires += 1
        self._fn(*self._args)
        if not self._stopped:
            delay = self.interval
            if self._jitter is not None:
                delay = max(0.0, delay + self._jitter())
            self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Stop the timer; pending firing is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def stopped(self) -> bool:
        return self._stopped
