"""Optional runtime invariant checking for simulation components.

A discrete-event simulator fails in two ways: loudly (an exception) or
silently (state drifts into nonsense and the results are quietly wrong).
This module guards against the second kind.  An :class:`InvariantChecker`
rides the simulation on a periodic timer and asserts, at every tick, the
properties that must hold in any correct run:

* **packet conservation** — every packet that arrived at the bottleneck
  queue was either enqueued or dropped (AQM, tail or injected fault), and
  every enqueued packet is either dequeued or still resident;
* **clock monotonicity** — virtual time never runs backwards between
  checks;
* **probability range** — the AQM's applied and raw probabilities are
  finite and within ``[0, 1]``;
* **non-negative queue depth** — packet and byte backlogs never go
  negative.

Violations raise :class:`~repro.errors.InvariantViolation` carrying the
virtual time, the component and the observed values, which the engine
propagates as a structured error instead of letting the run continue on
corrupt state.  Enable via ``Experiment(validate=True)`` or the CLI's
``--validate`` flag; the cost is one pass over a handful of counters per
``check_interval`` (50 ms of virtual time by default), so it is cheap
enough to leave on outside of benchmark runs.
"""

from __future__ import annotations

from typing import Optional

from repro.aqm.base import is_unit_probability
from repro.errors import InvariantViolation
from repro.sim.engine import Simulator

__all__ = ["InvariantChecker", "DEFAULT_CHECK_INTERVAL"]

#: Default virtual-time spacing of periodic checks, in seconds.
DEFAULT_CHECK_INTERVAL = 0.05


class InvariantChecker:
    """Periodic consistency validator for a queue/AQM pair.

    Parameters
    ----------
    sim:
        The simulator whose clock is checked for monotonicity.
    queue:
        The bottleneck :class:`~repro.net.queue.AQMQueue` (or anything
        with the same ``stats``/length interface); ``None`` skips the
        queue checks.
    aqm:
        The AQM whose probabilities are range-checked; ``None`` (tail-drop
        runs) skips them.
    check_interval:
        Virtual-time spacing of the periodic checks.
    label:
        Component label used in violation reports.
    """

    def __init__(
        self,
        sim: Simulator,
        queue=None,
        aqm=None,
        check_interval: float = DEFAULT_CHECK_INTERVAL,
        label: str = "bottleneck",
    ):
        if check_interval <= 0:
            raise ValueError(f"check_interval must be positive (got {check_interval})")
        self.sim = sim
        self.queue = queue
        self.aqm = aqm
        self.check_interval = check_interval
        self.label = label
        self.checks_run = 0
        self._last_clock: Optional[float] = None
        self._timer = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic checking (first check after one interval)."""
        if self._timer is None:
            self._timer = self.sim.every(self.check_interval, self.check_now)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def check_now(self) -> None:
        """Run every invariant once; raises on the first violation."""
        self._check_clock()
        if self.queue is not None:
            self._check_queue_depth()
            self._check_conservation()
        if self.aqm is not None:
            self._check_probability()
        self.checks_run += 1

    def _violation(self, invariant: str, message: str, **context) -> InvariantViolation:
        return InvariantViolation(
            message,
            invariant=invariant,
            sim_time=self.sim.now,
            component=self.label,
            context=context,
        )

    def _check_clock(self) -> None:
        now = self.sim.now
        if self._last_clock is not None and now < self._last_clock:
            raise self._violation(
                "clock_monotonic",
                f"virtual clock ran backwards: {self._last_clock} -> {now}",
                previous=self._last_clock,
                current=now,
            )
        self._last_clock = now

    def _check_queue_depth(self) -> None:
        pkts = self.queue.packet_length()
        bytes_ = self.queue.byte_length()
        if pkts < 0 or bytes_ < 0:
            raise self._violation(
                "queue_depth",
                f"negative queue depth: {pkts} packets / {bytes_} bytes",
                packets=pkts,
                bytes=bytes_,
            )
        if pkts == 0 and bytes_ != 0:
            raise self._violation(
                "queue_depth",
                f"empty queue holds {bytes_} residual bytes",
                bytes=bytes_,
            )

    def _check_conservation(self) -> None:
        stats = getattr(self.queue, "stats", None)
        if stats is None:  # custom queues without the standard counters
            return
        if stats.arrived != stats.enqueued + stats.dropped:
            raise self._violation(
                "conservation",
                "arrival conservation broken: "
                f"arrived={stats.arrived} != enqueued={stats.enqueued} "
                f"+ dropped={stats.dropped}",
                arrived=stats.arrived,
                enqueued=stats.enqueued,
                dropped=stats.dropped,
            )
        resident = self.queue.packet_length()
        if stats.enqueued != stats.dequeued + resident:
            raise self._violation(
                "conservation",
                "occupancy conservation broken: "
                f"enqueued={stats.enqueued} != dequeued={stats.dequeued} "
                f"+ resident={resident}",
                enqueued=stats.enqueued,
                dequeued=stats.dequeued,
                resident=resident,
            )

    def _check_probability(self) -> None:
        for name in ("probability", "raw_probability"):
            value = getattr(self.aqm, name, None)
            if value is None:
                continue
            if not is_unit_probability(value):
                raise self._violation(
                    "probability_range",
                    f"AQM {name} out of range: {value!r}",
                    **{name: value, "aqm": type(self.aqm).__name__},
                )
