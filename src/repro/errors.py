"""Structured exception hierarchy for the simulator and harness.

Every error raised from inside a running simulation carries enough context
to locate the failure without a debugger: the virtual time at which it
occurred, the component that raised it, and any key/value details the
raiser chose to attach.  The harness's resilient runners
(:mod:`repro.harness.resilience`) rely on this structure to build failure
reports for sweeps that continue past a broken cell instead of dying on it.

Hierarchy
---------

* :class:`ReproError` — root of everything this package raises on purpose.

  * :class:`ConfigError` — invalid experiment/fault configuration, raised
    before any simulation work starts.  Subclasses :class:`ValueError` so
    callers validating inputs the old way keep working.
  * :class:`SimulationError` — something went wrong *during* a run; carries
    ``sim_time``/``component``/``context``.

    * :class:`CallbackError` — an event callback raised a non-structured
      exception; the engine wraps it with the event's virtual time and the
      callback's name (the original exception is chained as ``__cause__``).
    * :class:`WatchdogExceeded` — the run watchdog's event-count or
      wall-clock budget was exhausted (a runaway or livelocked run).
    * :class:`InvariantViolation` — an internal consistency check failed
      (packet conservation, probability range, clock monotonicity, ...).

      * :class:`ControllerDivergence` — a PI controller produced a
        non-finite probability (NaN/inf input or unstable arithmetic).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "CallbackError",
    "WatchdogExceeded",
    "InvariantViolation",
    "ControllerDivergence",
    "ParallelExecutionError",
    "FigureGenerationError",
    "SupervisorError",
    "JournalError",
]


class ReproError(Exception):
    """Base class for every deliberate error raised by this package."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration detected before the simulation starts."""


class SimulationError(ReproError):
    """An error raised while the simulation was running.

    Parameters
    ----------
    message:
        Human-readable description of what went wrong.
    sim_time:
        Virtual time (seconds) at which the failure occurred.  The engine
        fills this in when the raiser could not (e.g. a component with no
        simulator reference).
    component:
        Name of the component that detected the failure, e.g.
        ``"PIController"`` or ``"AQMQueue"``.
    context:
        Extra key/value details (observed values, limits, counters).
    """

    def __init__(
        self,
        message: str,
        *,
        sim_time: Optional[float] = None,
        component: Optional[str] = None,
        context: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(message)
        self.message = message
        self.sim_time = sim_time
        self.component = component
        self.context = dict(context) if context else {}

    def __str__(self) -> str:
        parts = [self.message]
        where = []
        if self.sim_time is not None:
            where.append(f"t={self.sim_time:.6f}s")
        if self.component:
            where.append(f"component={self.component}")
        for key, value in self.context.items():
            where.append(f"{key}={value!r}")
        if where:
            parts.append(f"[{' '.join(where)}]")
        return " ".join(parts)


class CallbackError(SimulationError):
    """An event callback raised; re-raised with sim-time and callback name.

    The original exception is available as ``__cause__`` (standard
    exception chaining), so tracebacks show both the failure site and the
    event that triggered it.
    """

    def __init__(
        self,
        message: str,
        *,
        callback: Optional[str] = None,
        **kwargs: Any,
    ):
        super().__init__(message, **kwargs)
        self.callback = callback
        if callback:
            self.context.setdefault("callback", callback)


class WatchdogExceeded(SimulationError):
    """The run watchdog's event-count or wall-clock budget ran out."""


class InvariantViolation(SimulationError):
    """An internal consistency invariant does not hold.

    ``invariant`` names which check failed (``"conservation"``,
    ``"probability_range"``, ``"clock_monotonic"``, ...).
    """

    def __init__(
        self,
        message: str,
        *,
        invariant: Optional[str] = None,
        **kwargs: Any,
    ):
        super().__init__(message, **kwargs)
        self.invariant = invariant
        if invariant:
            self.context.setdefault("invariant", invariant)


class ControllerDivergence(InvariantViolation):
    """A PI controller produced or received a non-finite value."""


class ParallelExecutionError(ReproError):
    """A sweep cell failed inside a worker process (``on_error="raise"``).

    The original exception happened in another process; what crosses the
    boundary is its type name, message and structured context, carried
    here so the parent still learns where and when the cell died.
    """

    def __init__(
        self,
        message: str,
        *,
        label: Optional[str] = None,
        error_type: Optional[str] = None,
        sim_time: Optional[float] = None,
        component: Optional[str] = None,
    ):
        super().__init__(message)
        self.label = label
        self.error_type = error_type
        self.sim_time = sim_time
        self.component = component


class FigureGenerationError(ReproError):
    """A simulation-backed figure cell failed to produce a result.

    Figure cells run through the sweep machinery, which reports worker
    failures as structured :class:`~repro.harness.parallel.RunFailure`
    records rather than exceptions.  The figure pipeline converts such a
    record into this error so a broken cell fails *at the cell*, with the
    figure name, the cell's label, the worker-side exception type and the
    virtual time of death — instead of handing ``None`` to plotting code
    that crashes later with an unrelated ``AttributeError``.
    """

    def __init__(
        self,
        message: str,
        *,
        figure: Optional[str] = None,
        label: Optional[str] = None,
        error_type: Optional[str] = None,
        sim_time: Optional[float] = None,
        component: Optional[str] = None,
    ):
        super().__init__(message)
        self.figure = figure
        self.label = label
        self.error_type = error_type
        self.sim_time = sim_time
        self.component = component


class SupervisorError(ReproError):
    """The supervised execution backend itself failed (not a single task).

    Raised for infrastructure-level problems — e.g. worker processes that
    cannot be spawned even after degrading to serial execution — as
    opposed to :class:`ParallelExecutionError`, which reports one task's
    terminal failure.
    """


class JournalError(ReproError):
    """The result journal file is unusable (bad magic, wrong schema).

    A *torn final record* — the expected outcome of a crash mid-append —
    is **not** an error: readers tolerate it and report the intact prefix.
    This exception covers files that are not journals at all or were
    written by an incompatible schema.
    """
