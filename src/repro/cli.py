"""Command-line interface: run paper scenarios without writing code.

Examples
--------
List what is available::

    python -m repro list

Run a steady-state scenario and print the summary::

    python -m repro run --scenario light --aqm pi2 --duration 30

Coexistence at one grid point (Figure 15's metric)::

    python -m repro coexist --aqm coupled --link 40 --rtt 10

Bode margins at an operating point (Appendix B)::

    python -m repro bode --kind reno_pi2 --p 0.01 --rtt 100

Fluid-model trajectory (Appendix B, time domain)::

    python -m repro fluid --flows 5 --link 10 --rtt 100

Record a telemetry trace of a run and summarize it afterwards::

    python -m repro run --scenario light --aqm pi2 --trace /tmp/run.jsonl
    python -m repro trace summarize /tmp/run.jsonl
"""

from __future__ import annotations

import argparse
import hashlib
import sys
from dataclasses import replace
from typing import List, Optional

from repro.analysis.bode import (
    margins_reno_pi,
    margins_reno_pi2,
    margins_reno_pie,
    margins_scal_pi,
)
from repro.analysis.fluid import PiGains
from repro.analysis.timedomain import FluidScenario, simulate_fluid
from repro.harness import (
    FACTORIES,
    MBPS,
    coexistence_pair,
    heavy_tcp,
    light_tcp,
    run_experiment,
    tcp_plus_udp,
    varying_capacity,
    varying_intensity,
)
from repro.harness.sweep import format_table
from repro.net.faults import FAULT_SPEC_HELP, parse_fault_spec

__all__ = ["main"]

SCENARIOS = {
    "light": light_tcp,
    "heavy": heavy_tcp,
    "udp": tcp_plus_udp,
    "intensity": varying_intensity,
    "capacity": varying_capacity,
}

BODE_KINDS = {
    "reno_pi": lambda p, r0, g: margins_reno_pi(p, r0, g),
    "reno_pie": lambda p, r0, g: margins_reno_pie(p, r0, g),
    "reno_pi2": lambda p, r0, g: margins_reno_pi2(p, r0, g),
    "scal_pi": lambda p, r0, g: margins_scal_pi(p, r0, g),
}

DEFAULT_GAINS = {
    "reno_pi": (0.125, 1.25),
    "reno_pie": (0.125, 1.25),
    "reno_pi2": (0.3125, 3.125),
    "scal_pi": (0.625, 6.25),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PI2 (CoNEXT 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list scenarios and AQMs")

    run = sub.add_parser("run", help="run a canned scenario")
    run.add_argument("--scenario", choices=sorted(SCENARIOS), default="light")
    run.add_argument("--aqm", choices=sorted(FACTORIES), default="pi2")
    run.add_argument("--duration", type=float, default=30.0,
                     help="simulated seconds (stage length for dynamic scenarios)")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--json", metavar="PATH",
                     help="also write the result summary as JSON")
    run.add_argument("--validate", action="store_true",
                     help="run with periodic invariant checking "
                          "(packet conservation, p in [0,1], clock)")
    run.add_argument("--fault", metavar="SPEC", action="append", default=[],
                     help="inject a fault; repeatable. " + FAULT_SPEC_HELP)
    run.add_argument("--no-link-batching", action="store_true",
                     help="dispatch one event per packet instead of batched "
                          "drains (results are bit-exact either way; use for "
                          "A/B timing or debugging)")
    run.add_argument("--scheduler", choices=["heap", "wheel"], default="wheel",
                     help="event-core backend (results are bit-exact either "
                          "way; heap is the reference for A/B checks)")
    _add_trace_options(run)

    co = sub.add_parser("coexist", help="DCTCP vs Cubic at one grid point")
    co.add_argument("--aqm", choices=sorted(FACTORIES), default="coupled")
    co.add_argument("--link", type=float, default=40.0, help="Mb/s")
    co.add_argument("--rtt", type=float, default=10.0, help="ms")
    co.add_argument("--duration", type=float, default=30.0)
    co.add_argument("--cc-a", default="dctcp")
    co.add_argument("--cc-b", default="cubic")
    co.add_argument("--seed", type=int, default=1)

    grid = sub.add_parser(
        "grid",
        help="run a link×RTT coexistence grid, optionally supervised/resumable",
    )
    grid.add_argument("--aqm", choices=sorted(FACTORIES), default="coupled")
    grid.add_argument("--links", default="4,12",
                      help="comma-separated link rates in Mb/s (default: 4,12)")
    grid.add_argument("--rtts", default="5,10",
                      help="comma-separated RTTs in ms (default: 5,10)")
    grid.add_argument("--duration", type=float, default=10.0)
    grid.add_argument("--cc-a", default="dctcp")
    grid.add_argument("--cc-b", default="cubic")
    grid.add_argument("--seed", type=int, default=1)
    grid.add_argument("--on-error", choices=["raise", "capture"],
                      default="capture", dest="on_error",
                      help="capture (default): record failed cells and keep "
                           "going; raise: first failure aborts the sweep")
    grid.add_argument("--max-retries", type=int, default=1,
                      help="seed-bump retries per failing cell (default: 1)")
    grid.add_argument("--supervised", action="store_true",
                      help="run cells under the watchdogged backend "
                           "(per-task timeouts, heartbeats, crash retry)")
    grid.add_argument("--journal", metavar="PATH",
                      help="append each completed cell to a crash-safe "
                           "journal (implies --supervised)")
    grid.add_argument("--resume", action="store_true",
                      help="replay cells already in --journal instead of "
                           "re-simulating them (bit-exact)")
    grid.add_argument("--compact-every", type=int, default=None, metavar="N",
                      help="rewrite the journal (latest record per key) "
                           "after every N appends")
    grid.add_argument("--task-timeout", type=float, default=None, metavar="S",
                      help="kill and retry any cell running longer than S "
                           "wall-clock seconds")
    grid.add_argument("--heartbeat-timeout", type=float, default=None,
                      metavar="S",
                      help="kill and retry a worker silent for S seconds")
    grid.add_argument("--scheduler", choices=["heap", "wheel"],
                      default="wheel",
                      help="event-core backend for every cell (bit-exact "
                           "either way; CI diffs the printed grid digest "
                           "between the two)")
    _add_perf_options(grid)
    _add_trace_options(grid)

    bode = sub.add_parser("bode", help="gain/phase margins at an operating point")
    bode.add_argument("--kind", choices=sorted(BODE_KINDS), default="reno_pi2")
    bode.add_argument("--p", type=float, default=0.01,
                      help="operating point (p or p' depending on kind)")
    bode.add_argument("--rtt", type=float, default=100.0, help="ms")
    bode.add_argument("--alpha", type=float)
    bode.add_argument("--beta", type=float)

    figure = sub.add_parser("figure", help="regenerate a paper figure's data")
    figure.add_argument("name", help="figure name (see `repro list`)")
    figure.add_argument("--scale", type=float, default=1.0,
                        help="duration multiplier (1 = quick defaults)")
    figure.add_argument("--csv", metavar="PATH", help="also write rows as CSV")
    figure.add_argument("--journal", metavar="DIR",
                        help="append each completed cell to a crash-safe "
                             "journal (<DIR>/<figure>.journal, fsync'd per "
                             "cell)")
    figure.add_argument("--resume", action="store_true",
                        help="replay cells already in --journal instead of "
                             "re-simulating them (bit-exact)")
    figure.add_argument("--task-timeout", type=float, default=None,
                        metavar="S",
                        help="run each cell in a supervised worker and kill/"
                             "retry it past S wall-clock seconds")
    figure.add_argument("--heartbeat-timeout", type=float, default=None,
                        metavar="S",
                        help="kill and retry a cell's worker silent for S "
                             "seconds (implies supervised execution)")
    figure.add_argument("--compact-every", type=int, default=None,
                        metavar="N",
                        help="rewrite the journal (latest record per key) "
                             "after every N appends")
    _add_perf_options(figure)
    _add_trace_options(figure)

    trace = sub.add_parser(
        "trace",
        help="work with JSONL telemetry traces recorded via --trace",
    )
    trace.add_argument("action", choices=["summarize"],
                       help="summarize: per-category event counts, control-"
                            "loop convergence, engine lane stats, span "
                            "durations")
    trace.add_argument("path", help="trace file written by --trace")
    trace.add_argument("--json", action="store_true",
                       help="emit the summary as JSON instead of a report")
    trace.add_argument("--rows", type=int, default=12, metavar="N",
                       help="time-series rows in the human report "
                            "(default: 12)")

    bench = sub.add_parser(
        "bench",
        help="run the performance benchmark harness, emit BENCH_<date>.json",
    )
    bench.add_argument("--full", action="store_true",
                       help="larger grids / longer runs (default: quick)")
    bench.add_argument("--jobs", type=int, default=0, metavar="N",
                       help="worker processes for the parallel benchmarks "
                            "(0 = one per CPU)")
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--output", metavar="PATH",
                       help="JSON path (default: ./BENCH_<date>.json)")
    bench.add_argument("--profile", action="store_true",
                       help="also print a cProfile report of one experiment run")

    check = sub.add_parser(
        "check",
        help="run the domain static-analysis rules "
             "(DET/ORD/PROB/SCHED/PICKLE/FLOAT/OBS/TAINT/UNIT)",
    )
    check.add_argument("paths", nargs="*", metavar="PATH",
                       help="files or directories to check "
                            "(default: the installed repro package)")
    check.add_argument("--rules", metavar="NAMES",
                       help="comma-separated rule subset (e.g. DET,PROB)")
    check.add_argument("--format", choices=["human", "json", "sarif"],
                       default="human", dest="output_format",
                       help="report format (json is versioned, sarif is "
                            "2.1.0; see docs/STATIC_ANALYSIS.md)")
    check.add_argument("--list-rules", action="store_true",
                       help="print the rule catalogue and exit")
    check.add_argument("--incremental", action="store_true",
                       help="re-analyze only files whose content hash "
                            "changed, plus their call-graph dependents "
                            "(state in --state)")
    check.add_argument("--state", metavar="PATH", default=None,
                       help="incremental-state file "
                            "(default: .repro-check-state.json)")
    check.add_argument("--baseline", metavar="PATH", default=None,
                       help="findings-baseline ratchet file "
                            "(default: tools/findings_baseline.json when "
                            "a baseline flag is used)")
    check.add_argument("--update-baseline", action="store_true",
                       help="rewrite the baseline to the current counts")
    check.add_argument("--require-baseline", action="store_true",
                       help="fail when the baseline file is missing "
                            "(CI mode); gate counts against it")

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("--cache-dir", metavar="DIR",
                       help="cache location (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro-pi2)")
    cache.add_argument("--clear", action="store_true",
                       help="delete every cached result")
    cache.add_argument("--verify", action="store_true",
                       help="scan every entry, pruning any that fail to load")

    fluid = sub.add_parser("fluid", help="fluid-model trajectory (Appendix B)")
    fluid.add_argument("--kind", choices=["reno_pi2", "reno_pi", "scal_pi"],
                       default="reno_pi2")
    fluid.add_argument("--flows", type=float, default=5.0)
    fluid.add_argument("--link", type=float, default=10.0, help="Mb/s")
    fluid.add_argument("--rtt", type=float, default=100.0, help="ms")
    fluid.add_argument("--duration", type=float, default=40.0)
    return parser


def _add_perf_options(parser) -> None:
    """--jobs / --cache-dir / --no-cache, shared by simulation commands."""
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="run sweep cells in N worker processes "
                             "(0 = one per CPU; default: serial)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="result-cache location (default: $REPRO_CACHE_DIR "
                             "or ~/.cache/repro-pi2)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")


def _add_trace_options(parser) -> None:
    """--trace / --trace-filter, shared by the simulation commands."""
    parser.add_argument("--trace", metavar="PATH",
                        help="record typed telemetry events (AQM control law, "
                             "engine epochs, harness spans) to a JSONL file; "
                             "results are bit-exact with tracing on or off")
    parser.add_argument("--trace-filter", metavar="CATS",
                        default="aqm,engine,harness",
                        help="comma-separated event categories to record "
                             "(default: aqm,engine,harness)")


def _make_tracer(args):
    """Build the JSONL tracer an argparse namespace asks for (or None)."""
    from repro.errors import ConfigError
    from repro.obs import JsonlTracer

    if getattr(args, "trace", None) is None:
        return None
    categories = [c for c in args.trace_filter.split(",") if c.strip()]
    try:
        return JsonlTracer(args.trace, categories=categories)
    except (ValueError, OSError) as exc:
        raise ConfigError(str(exc)) from exc


def _close_tracer(tracer, out) -> None:
    """Flush the tracer and print a one-line recording summary."""
    if tracer is None:
        return
    tracer.close()
    counts = ", ".join(
        f"{cat}={n}" for cat, n in sorted(tracer.counts.items()) if n
    )
    print(f"trace: {tracer.total_events} events ({counts or 'none'}) "
          f"-> {tracer.path}", file=out)


def _make_cache(args):
    """Build the result cache an argparse namespace asks for (or None).

    The CLI always hands out the shared (cross-process single-flight)
    flavour: concurrent ``repro figure``/``repro grid`` invocations over
    the same cache directory then compute each cell once between them.
    """
    from repro.harness.cache import DEFAULT_CACHE_DIR, SharedResultCache

    if getattr(args, "no_cache", False):
        return None
    return SharedResultCache(
        getattr(args, "cache_dir", None) or DEFAULT_CACHE_DIR
    )


def _cmd_list(out) -> int:
    from repro.harness.figures import FIGURES

    print("scenarios:", ", ".join(sorted(SCENARIOS)), file=out)
    print("aqms:     ", ", ".join(sorted(FACTORIES)), file=out)
    print("bode kinds:", ", ".join(sorted(BODE_KINDS)), file=out)
    print("figures:  ", ", ".join(sorted(FIGURES)), file=out)
    return 0


def _check_compact_every(args) -> None:
    """Reject a nonpositive ``--compact-every`` as configuration, not as
    a :class:`~repro.errors.JournalError` traceback from the journal."""
    value = getattr(args, "compact_every", None)
    if value is not None and value < 1:
        from repro.errors import ConfigError

        raise ConfigError(
            f"--compact-every must be a positive append count (got {value})"
        )


def _cmd_figure(args, out) -> int:
    from repro.harness.figures import generate_figure

    _check_compact_every(args)

    supervisor = None
    if args.task_timeout is not None or args.heartbeat_timeout is not None:
        from repro.harness.supervisor import SupervisorConfig

        supervisor = SupervisorConfig(
            task_timeout=args.task_timeout,
            heartbeat_timeout=args.heartbeat_timeout,
        )
    cache = _make_cache(args)
    tracer = _make_tracer(args)
    if cache is not None and tracer is not None:
        cache.set_tracer(tracer)
    data = generate_figure(args.name, scale=args.scale, jobs=args.jobs,
                           cache=cache, tracer=tracer,
                           journal=args.journal, resume=args.resume,
                           supervisor=supervisor,
                           compact_every=args.compact_every)
    _close_tracer(tracer, out)
    print(data.table(), file=out)
    if data.report is not None and (args.journal or supervisor is not None):
        print(f"figure: {data.report.summary()}", file=out)
    if cache is not None and (cache.stats.hits or cache.stats.stores):
        print(f"cache: {cache.stats} ({cache.root})", file=out)
    if args.csv:
        data.to_csv(args.csv)
        print(f"wrote {args.csv}", file=out)
    return 0


def _cmd_bench(args, out) -> int:
    from repro.perf import (
        format_bench_table,
        profile_experiment,
        run_benchmarks,
        write_bench_json,
    )

    payload = run_benchmarks(quick=not args.full, jobs=args.jobs, seed=args.seed)
    print(format_bench_table(payload), file=out)
    path = write_bench_json(payload, args.output)
    print(f"wrote {path}", file=out)
    if args.profile:
        from repro.harness import light_tcp
        from repro.harness.factories import pi2_factory

        report = profile_experiment(
            light_tcp(pi2_factory(), duration=5.0, seed=args.seed)
        )
        print(report, file=out)
    mismatches = [
        b["name"] for b in payload["benchmarks"]
        if b.get("matches_serial") is False
        or b.get("matches_cold") is False
        or b.get("matches_unbatched") is False
        or b.get("matches_resume") is False
        or b.get("matches_heap") is False
        or b.get("matches_untraced") is False
    ]
    if mismatches:
        print(f"DETERMINISM REGRESSION in: {', '.join(mismatches)}", file=out)
        return 1
    broken_flight = [
        b["name"] for b in payload["benchmarks"]
        if b.get("single_flight_ok") is False
    ]
    if broken_flight:
        print(f"SINGLE-FLIGHT REGRESSION in: {', '.join(broken_flight)}",
              file=out)
        return 1
    slow_journal = [
        b["name"] for b in payload["benchmarks"]
        if b.get("journal_overhead_ok") is False
    ]
    if slow_journal:
        print(f"JOURNAL OVERHEAD REGRESSION in: {', '.join(slow_journal)}",
              file=out)
        return 1
    slow_tracing = [
        b["name"] for b in payload["benchmarks"]
        if b.get("tracing_overhead_ok") is False
    ]
    if slow_tracing:
        print(f"TRACING OVERHEAD REGRESSION in: {', '.join(slow_tracing)}",
              file=out)
        return 1
    static = payload.get("static_analysis", {})
    if static.get("within_budget") is False:
        print(
            f"STATIC ANALYSIS BUDGET REGRESSION: full-tree repro check "
            f"took {static.get('seconds', 0.0):.2f}s "
            f"(budget {static.get('budget_seconds')}s)",
            file=out,
        )
        return 1
    return 0


def _cmd_trace(args, out) -> int:
    from repro.obs import format_trace_summary, summarize_trace

    try:
        summary = summarize_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=out)
        return 1
    if args.json:
        import json

        # The series arrays are the bulk of the payload; keep them — the
        # JSON form exists precisely for plotting p'/delay time-series.
        print(json.dumps(summary, indent=2, sort_keys=True), file=out)
    else:
        print(format_trace_summary(summary, max_rows=args.rows), file=out)
    return 0


def _cmd_check(args, out) -> int:
    from repro.analysis.static import run_check

    rule_names = args.rules.split(",") if args.rules else None
    return run_check(
        paths=args.paths or None,
        rule_names=rule_names,
        output_format=args.output_format,
        list_rules=args.list_rules,
        incremental=args.incremental,
        state_path=args.state,
        baseline=args.baseline,
        update_baseline=args.update_baseline,
        require_baseline=args.require_baseline,
        out=out,
    )


def _cmd_cache(args, out) -> int:
    from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache

    cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}", file=out)
    elif args.verify:
        ok, corrupt = cache.verify(prune=True)
        print(f"cache dir: {cache.root}", file=out)
        print(f"verified:  {ok} entr{'y' if ok == 1 else 'ies'} OK", file=out)
        if corrupt:
            print(f"pruned {len(corrupt)} corrupt entr"
                  f"{'y' if len(corrupt) == 1 else 'ies'}:", file=out)
            for line in corrupt:
                print(f"  - {line}", file=out)
            return 1
    else:
        print(f"cache dir: {cache.root}", file=out)
        print(f"entries:   {len(cache)}", file=out)
    return 0


def _cmd_grid(args, out) -> int:
    from repro.harness.supervisor import SupervisorConfig
    from repro.harness.sweep import run_coexistence_grid

    links = [float(v) for v in args.links.split(",") if v.strip()]
    rtts = [float(v) for v in args.rtts.split(",") if v.strip()]
    supervised = (
        args.supervised or args.journal is not None or args.resume
        or args.task_timeout is not None or args.heartbeat_timeout is not None
    )
    supervisor = None
    if supervised:
        supervisor = SupervisorConfig(
            task_timeout=args.task_timeout,
            heartbeat_timeout=args.heartbeat_timeout,
            max_retries=args.max_retries,
        )
    _check_compact_every(args)
    journal = args.journal
    own_journal = None
    if args.journal is not None and args.compact_every is not None:
        from repro.harness.journal import ResultJournal

        journal = own_journal = ResultJournal(
            args.journal, compact_every=args.compact_every
        )
    cache = _make_cache(args)
    tracer = _make_tracer(args)
    if cache is not None and tracer is not None:
        cache.set_tracer(tracer)
    try:
        outcome = run_coexistence_grid(
            FACTORIES[args.aqm](),
            cc_a=args.cc_a,
            cc_b=args.cc_b,
            links_mbps=links,
            rtts_ms=rtts,
            duration=args.duration,
            warmup=min(10.0, args.duration / 2),
            seed=args.seed,
            on_error=args.on_error,
            max_retries=args.max_retries,
            jobs=args.jobs,
            cache=cache,
            supervised=supervised,
            supervisor=supervisor,
            journal=journal,
            resume=args.resume,
            scheduler=args.scheduler,
            tracer=tracer,
        )
    finally:
        if own_journal is not None:
            own_journal.close()
    _close_tracer(tracer, out)
    rows = [
        (
            cell.link_mbps,
            cell.rtt_ms,
            cell.balance(args.cc_a, args.cc_b),
            cell.result.sojourn_summary()["mean"] * 1e3,
            cell.result.mean_utilization() * 100,
        )
        for cell in outcome
    ]
    print(
        format_table(
            ["link [Mb/s]", "rtt [ms]", f"{args.cc_b}/{args.cc_a}",
             "delay [ms]", "util [%]"],
            rows,
            title=f"grid aqm={args.aqm} {args.cc_a} vs {args.cc_b} "
                  f"seed={args.seed}",
        ),
        file=out,
    )
    if outcome.recovery is not None:
        report = outcome.recovery
        print(
            f"supervised: executed={report.executed} "
            f"replayed={report.replayed} cache_hits={report.cache_hits} "
            f"journal_appends={report.journal_appends}"
            f"{' DEGRADED-TO-SERIAL' if report.degraded else ''}",
            file=out,
        )
        if report.actions:
            print(report.format_actions(), file=out)
    if cache is not None and (cache.stats.hits or cache.stats.stores):
        print(f"cache: {cache.stats} ({cache.root})", file=out)
    if not outcome.complete:
        print(outcome.failure_report(), file=out)
        return 1
    # One line CI can diff between --scheduler=heap and --scheduler=wheel
    # runs: equal grids hash equal, any cell diverging changes it.
    combined = hashlib.sha256(
        "".join(cell.result.digest_hex() for cell in outcome).encode("ascii")
    ).hexdigest()
    print(f"grid digest: {combined}", file=out)
    return 0


def _cmd_run(args, out) -> int:
    factory = FACTORIES[args.aqm]()
    scenario = SCENARIOS[args.scenario]
    if args.scenario in ("intensity", "capacity"):
        exp = scenario(factory, stage=args.duration, seed=args.seed)
    else:
        exp = scenario(factory, duration=args.duration, seed=args.seed)
    if args.validate or args.fault:
        faults = tuple(parse_fault_spec(spec) for spec in args.fault)
        exp = replace(exp, validate=args.validate, faults=faults)
    if args.no_link_batching:
        exp = replace(exp, link_batching=False)
    if args.scheduler != exp.scheduler:
        exp = replace(exp, scheduler=args.scheduler)
    tracer = _make_tracer(args)
    result = run_experiment(exp, tracer=tracer)
    _close_tracer(tracer, out)
    delay = result.sojourn_summary(percentiles=(99,))
    rows = [
        ("queue delay mean [ms]", delay["mean"] * 1e3),
        ("queue delay p99 [ms]", delay["p99"] * 1e3),
        ("utilization [%]", result.mean_utilization() * 100),
        ("AQM drops", result.queue_stats.aqm_dropped),
        ("tail drops", result.queue_stats.tail_dropped),
        ("CE marks", result.queue_stats.ce_marked),
    ]
    if args.validate:
        rows.append(("invariant checks", result.invariant_checks))
    if args.fault:
        rows.append(("fault drops", result.queue_stats.fault_dropped))
    print(
        format_table(
            ["metric", "value"], rows,
            title=f"scenario={args.scenario} aqm={args.aqm} "
                  f"duration={exp.duration:.0f}s seed={args.seed}",
        ),
        file=out,
    )
    if args.json:
        from repro.metrics.export import write_result_json

        path = write_result_json(result, args.json)
        print(f"wrote {path}", file=out)
    return 0


def _cmd_coexist(args, out) -> int:
    factory = FACTORIES[args.aqm]()
    exp = coexistence_pair(
        factory,
        cc_a=args.cc_a,
        cc_b=args.cc_b,
        capacity_bps=args.link * MBPS,
        rtt=args.rtt / 1e3,
        duration=args.duration,
        warmup=min(10.0, args.duration / 2),
        seed=args.seed,
    )
    result = run_experiment(exp)
    a = sum(result.goodputs(args.cc_a)) / 1e6
    b = sum(result.goodputs(args.cc_b)) / 1e6
    rows = [
        (f"{args.cc_a} [Mb/s]", a),
        (f"{args.cc_b} [Mb/s]", b),
        (f"{args.cc_b}/{args.cc_a} ratio", b / a if a else float("inf")),
        ("queue delay mean [ms]", result.sojourn_summary()["mean"] * 1e3),
        ("utilization [%]", result.mean_utilization() * 100),
    ]
    print(
        format_table(
            ["metric", "value"], rows,
            title=f"coexistence aqm={args.aqm} link={args.link}Mb/s rtt={args.rtt}ms",
        ),
        file=out,
    )
    return 0


def _cmd_bode(args, out) -> int:
    alpha, beta = DEFAULT_GAINS[args.kind]
    gains = PiGains(
        alpha if args.alpha is None else args.alpha,
        beta if args.beta is None else args.beta,
    )
    margins = BODE_KINDS[args.kind](args.p, args.rtt / 1e3, gains)
    gm = margins.gain_margin_db
    pm = margins.phase_margin_deg
    rows = [
        ("gain margin [dB]", float("nan") if gm is None else gm),
        ("phase margin [deg]", float("nan") if pm is None else pm),
        ("stable", str(margins.stable)),
    ]
    print(
        format_table(
            ["metric", "value"], rows,
            title=f"bode kind={args.kind} p={args.p} rtt={args.rtt}ms "
                  f"alpha={gains.alpha} beta={gains.beta}",
        ),
        file=out,
    )
    return 0


def _cmd_fluid(args, out) -> int:
    cap_pps = args.link * MBPS / (1448 * 8)
    alpha, beta = DEFAULT_GAINS[args.kind if args.kind != "reno_pi" else "reno_pi"]
    scenario = FluidScenario(
        capacity_pps=cap_pps,
        n_flows=args.flows,
        base_rtt=args.rtt / 1e3,
        alpha=alpha,
        beta=beta,
        kind=args.kind,
        duration=args.duration,
    )
    result = simulate_fluid(scenario)
    rows = [
        ("steady queue delay [ms]", result.tail_mean("queue_delay") * 1e3),
        ("steady window [seg]", result.tail_mean("window")),
        ("steady p' ", result.tail_mean("p_prime")),
        ("steady applied p", result.tail_mean("applied_p")),
        ("peak queue delay [ms]", result.peak("queue_delay") * 1e3),
    ]
    print(
        format_table(
            ["metric", "value"], rows,
            title=f"fluid kind={args.kind} flows={args.flows} "
                  f"link={args.link}Mb/s rtt={args.rtt}ms",
        ),
        file=out,
    )
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "coexist":
        return _cmd_coexist(args, out)
    if args.command == "figure":
        return _cmd_figure(args, out)
    if args.command == "bench":
        return _cmd_bench(args, out)
    if args.command == "check":
        return _cmd_check(args, out)
    if args.command == "cache":
        return _cmd_cache(args, out)
    if args.command == "grid":
        return _cmd_grid(args, out)
    if args.command == "bode":
        return _cmd_bode(args, out)
    if args.command == "fluid":
        return _cmd_fluid(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
