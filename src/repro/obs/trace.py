"""The Tracer protocol, the JSONL sink, and the AQM instrumentation hook.

A tracer is a passive observer: components *emit* typed events into it
and never read anything back (the ``OBS`` static-analysis rule bans
tracer calls whose result feeds simulation state, and tracers passed
into scheduling calls).  Because instrumentation is installed by
swapping bound methods / setting an optional engine field — never by
adding ``if tracing`` branches to per-packet hot paths — a run without
a tracer executes exactly the code it executed before this module
existed, and a run *with* a tracer produces bit-identical
:meth:`~repro.harness.experiment.ResultMetrics.digest` values.

Event records are JSON objects with three reserved keys — ``cat`` (one
of :data:`CATEGORIES`), ``event`` (the type), ``t`` (virtual time, or
0.0 for parent-process harness spans that carry ``wall`` instead) —
plus event-specific fields.  The first line of a JSONL trace is a
header carrying :data:`TRACE_SCHEMA_VERSION`; the full field-by-field
schema is documented in ``docs/OBSERVABILITY.md`` and locked by
``tests/obs/test_tracing.py``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

try:  # pragma: no cover - Protocol is 3.8+; the repo floor is 3.10
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "CATEGORIES",
    "Tracer",
    "JsonlTracer",
    "RecordingTracer",
    "engine_tracer",
    "install_aqm_tracer",
]

#: Version of the on-disk JSONL event schema.  Bump only with a
#: migration note in docs/OBSERVABILITY.md; tests lock the value.
TRACE_SCHEMA_VERSION = 1

#: Event categories, in documentation order: AQM control-law events,
#: engine dispatch-epoch snapshots, harness lifecycle spans.
CATEGORIES = ("aqm", "engine", "harness")


class Tracer(Protocol):
    """What a telemetry sink must implement.

    Implementations must treat every method as fire-and-forget: no
    exceptions for unknown categories, no feedback into the caller.
    """

    def wants(self, category: str) -> bool:
        """Whether events of ``category`` should be generated at all.

        Instrumentation sites may use this to skip *installing* hooks
        (never to branch per event — sinks filter in :meth:`emit`).
        """
        ...

    def emit(
        self, category: str, event: str, t: float, fields: Mapping[str, Any]
    ) -> None:
        """Record one event at virtual time ``t`` with extra ``fields``."""
        ...

    def close(self) -> None:
        """Flush and release the sink; further emits are undefined."""
        ...


def _parse_categories(categories: Optional[Iterable[str]]) -> frozenset:
    """Validate a category selection against :data:`CATEGORIES`."""
    if categories is None:
        return frozenset(CATEGORIES)
    selected = frozenset(str(c).strip() for c in categories if str(c).strip())
    unknown = selected - frozenset(CATEGORIES)
    if unknown:
        raise ValueError(
            f"unknown trace categories {sorted(unknown)} "
            f"(known: {', '.join(CATEGORIES)})"
        )
    return selected


class JsonlTracer:
    """Append-only JSONL sink: one header line, then one object per event.

    Parameters
    ----------
    path:
        Output file; truncated on open.
    categories:
        Subset of :data:`CATEGORIES` to record (None = all).  Events of
        unselected categories are dropped silently in :meth:`emit`, so
        instrumented components may emit unconditionally.
    """

    def __init__(
        self,
        path: Union[str, Path],
        categories: Optional[Iterable[str]] = None,
    ):
        self.path = Path(path)
        self.categories = _parse_categories(categories)
        #: Events written, per category (header line not counted).
        self.counts: Dict[str, int] = {c: 0 for c in CATEGORIES}
        self._fh = open(self.path, "w", encoding="utf-8")
        header = {
            "schema": TRACE_SCHEMA_VERSION,
            "kind": "repro-trace",
            "categories": sorted(self.categories),
        }
        self._fh.write(json.dumps(header, sort_keys=True) + "\n")

    def wants(self, category: str) -> bool:
        """Whether ``category`` is in this sink's selection."""
        return category in self.categories

    def emit(
        self, category: str, event: str, t: float, fields: Mapping[str, Any]
    ) -> None:
        """Serialize one event; unselected categories are dropped."""
        if category not in self.categories:
            return
        record = {"cat": category, "event": event, "t": t}
        record.update(fields)
        self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        self.counts[category] += 1

    @property
    def total_events(self) -> int:
        """Events written across all categories."""
        return sum(self.counts.values())

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RecordingTracer:
    """In-memory sink for tests: keeps ``(category, event, t, fields)``."""

    def __init__(self, categories: Optional[Iterable[str]] = None):
        self.categories = _parse_categories(categories)
        #: Every emitted event, in emission order.
        self.events: List[Tuple[str, str, float, Dict[str, Any]]] = []

    def wants(self, category: str) -> bool:
        """Whether ``category`` is in this sink's selection."""
        return category in self.categories

    def emit(
        self, category: str, event: str, t: float, fields: Mapping[str, Any]
    ) -> None:
        """Append one event to :attr:`events`."""
        if category in self.categories:
            self.events.append((category, event, t, dict(fields)))

    def close(self) -> None:
        """No-op (nothing to flush)."""

    def by_event(self, event: str) -> List[Tuple[str, str, float, Dict[str, Any]]]:
        """Events of one type, in emission order."""
        return [e for e in self.events if e[1] == event]


def engine_tracer(tracer: Optional[Any]) -> Optional[Any]:
    """``tracer`` when it subscribes to ``engine`` events, else None.

    The engine only switches to its chunked, epoch-snapshotting run
    loop when it holds a tracer, so the subscription check must happen
    *here* (in the observability layer) rather than inside the engine —
    simulation packages never read tracer results (the OBS rule).
    """
    if tracer is not None and tracer.wants("engine"):
        return tracer
    return None


def install_aqm_tracer(aqm: Optional[Any], tracer: Optional[Any]) -> Optional[Any]:
    """Instrument one AQM instance with control-law tracing.

    Installs ``update``/``decide`` wrappers as *instance attributes*, so
    it must run **before** the AQM is attached to a simulator/queue
    (attachment binds ``aqm.update`` into the periodic update timer and
    the queue looks up ``aqm.decide`` per packet — both find the
    wrapper only if it is already installed).  An un-traced AQM carries
    no wrapper and pays zero overhead.

    The wrappers are read-only observers: the update wrapper reads the
    controller's ``prev_delay`` before and after the real update (the
    controller stores the delay it acted on there), so no state is
    recomputed or mutated and seeded behaviour is bit-identical.

    Emits per update: ``aqm_update`` with the queue-delay input, the
    target, the error terms, ``p_prime`` (the linear probability the PI
    core computed) and ``p`` (the applied probability; for coupled AQMs
    additionally ``ps``/``pc``).  Emits per enqueue verdict:
    ``aqm_decision`` with the verdict name, applied probability, ECN
    codepoint and flow id.

    Returns ``aqm`` (possibly None, possibly uninstrumented when the
    tracer does not subscribe to the ``aqm`` category).
    """
    if aqm is None or tracer is None or not tracer.wants("aqm"):
        return aqm
    original_update = aqm.update
    original_decide = aqm.decide
    emit = tracer.emit
    kind = type(aqm).__name__
    controller = getattr(aqm, "controller", None)

    def traced_update() -> None:
        """Run the real control-law update, then emit ``aqm_update``."""
        prev_delay = controller.prev_delay if controller is not None else None
        original_update()
        sim = aqm.sim
        now = sim.now if sim is not None else 0.0
        fields: Dict[str, Any] = {
            "aqm": kind,
            "p_prime": aqm.raw_probability,
            "p": aqm.probability,
        }
        if controller is not None:
            # PIController.update() stores the delay it acted on in
            # prev_delay, so this re-reads — never recomputes — state.
            delay = controller.prev_delay
            fields["delay"] = delay
            fields["target"] = controller.target
            fields["error"] = delay - controller.target
            if prev_delay is not None:
                fields["delta_error"] = delay - prev_delay
        classic = getattr(aqm, "classic_probability", None)
        if classic is not None:
            fields["ps"] = aqm.probability
            fields["pc"] = classic
        emit("aqm", "aqm_update", now, fields)

    def traced_decide(packet: Any) -> Any:
        """Run the real verdict, then emit ``aqm_decision``."""
        decision = original_decide(packet)
        sim = aqm.sim
        now = sim.now if sim is not None else 0.0
        ecn = getattr(packet, "ecn", None)
        emit(
            "aqm",
            "aqm_decision",
            now,
            {
                "aqm": kind,
                "verdict": decision.name.lower(),
                "p": aqm.probability,
                "ecn": ecn.name if ecn is not None else None,
                "flow": getattr(packet, "flow_id", None),
            },
        )
        return decision

    aqm.update = traced_update
    aqm.decide = traced_decide
    return aqm
