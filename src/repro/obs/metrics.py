"""MetricsRegistry: named counters/gauges from every layer of a run.

Components implement ``register_metrics(registry)`` and either set
values directly or register a *provider* — a zero-argument callable
returning a flat ``{name: value}`` mapping, evaluated lazily at
:meth:`MetricsRegistry.snapshot` time so the registry always reflects
end-of-run state without components pushing updates.

The snapshot is a flat, sorted, JSON-able dict with dotted names
(``engine.events_processed``, ``aqm.marked``, ``link.batches``, ...).
It is attached to results as the ``telemetry`` block
(:class:`~repro.harness.frozen.FrozenResult`) and embedded in
``BENCH_<date>.json`` — and deliberately excluded from
``ResultMetrics.digest()``, so telemetry can grow without perturbing
the bit-exactness gates.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Union

__all__ = ["MetricsRegistry"]

#: What a metric value may be: numbers for counters/gauges, strings for
#: small identity facts (scheduler name, AQM class).
MetricValue = Union[int, float, str, None]


class MetricsRegistry:
    """A write-mostly registry of named metrics with lazy providers."""

    def __init__(self) -> None:
        self._values: Dict[str, MetricValue] = {}
        self._providers: Dict[str, Callable[[], Mapping[str, Any]]] = {}

    def set(self, name: str, value: MetricValue) -> None:
        """Set gauge ``name`` to ``value`` (overwrites)."""
        self._values[name] = value

    def increment(self, name: str, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` to counter ``name`` (creates at 0)."""
        current = self._values.get(name, 0)
        if not isinstance(current, (int, float)):
            raise TypeError(f"metric {name!r} is not numeric: {current!r}")
        self._values[name] = current + amount

    def register_provider(
        self, prefix: str, provider: Callable[[], Mapping[str, Any]]
    ) -> None:
        """Register a lazy metric source under dotted ``prefix``.

        ``provider()`` is called at snapshot time; its keys are emitted
        as ``{prefix}.{key}``.  Duplicate prefixes are rejected so two
        components cannot silently shadow each other's metrics.
        """
        if prefix in self._providers:
            raise ValueError(f"duplicate metrics provider prefix {prefix!r}")
        self._providers[prefix] = provider

    def snapshot(self) -> Dict[str, MetricValue]:
        """Evaluate providers and render the flat, sorted metric dict."""
        out: Dict[str, MetricValue] = dict(self._values)
        for prefix in sorted(self._providers):
            for key, value in self._providers[prefix]().items():
                out[f"{prefix}.{key}"] = value
        return dict(sorted(out.items()))
