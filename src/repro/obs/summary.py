"""Offline analysis of a JSONL trace (``repro trace summarize``).

Reconstructs what the tracer observed: per-category/per-type event
counts, the AQM control loop's ``p'``/queue-delay time-series and its
convergence time, and harness span durations.  Everything here reads
the trace file only — it can run long after the simulation, on another
machine, against a trace produced by any :class:`~repro.obs.trace.Tracer`
implementation that follows the schema.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.trace import CATEGORIES, TRACE_SCHEMA_VERSION

__all__ = ["read_trace", "summarize_trace", "format_trace_summary"]


def read_trace(
    path: Union[str, Path],
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Parse a JSONL trace into ``(header, events)``.

    Raises ``ValueError`` on an empty file, a missing/alien header, or
    a schema version this reader does not understand.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("kind") != "repro-trace":
        raise ValueError(f"{path}: not a repro trace (missing header line)")
    if header.get("schema") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: trace schema {header.get('schema')!r} not supported "
            f"(this reader understands {TRACE_SCHEMA_VERSION})"
        )
    events = [json.loads(line) for line in lines[1:] if line.strip()]
    return header, events


def _convergence_time(
    times: List[float], values: List[float]
) -> Tuple[Optional[float], Optional[float]]:
    """``(convergence_time, final_value)`` of a control-signal series.

    ``final_value`` is the median of the last quarter of the samples;
    the loop is converged from the first time after which *every*
    subsequent sample stays within ``max(10% of final, 0.01)`` of it.
    Returns ``(None, final)`` when the series never settles and
    ``(None, None)`` when there are too few samples to judge.
    """
    if len(values) < 8:
        return None, None
    tail = sorted(values[-max(2, len(values) // 4):])
    mid = len(tail) // 2
    final = tail[mid] if len(tail) % 2 else 0.5 * (tail[mid - 1] + tail[mid])
    band = max(0.1 * abs(final), 0.01)
    converged_at: Optional[float] = None
    for t, value in zip(times, values):
        if abs(value - final) <= band:
            if converged_at is None:
                converged_at = t
        else:
            converged_at = None
    return converged_at, final


def summarize_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Aggregate one trace file into a JSON-able summary dict.

    Keys: ``schema``, ``events`` (total), ``categories`` (per-category
    counts), ``event_types`` (per-type counts), ``aqm`` (update count,
    ``p'``/delay series and convergence diagnostics; None when no AQM
    events were recorded), ``engine`` (epoch count and final lane
    stats; None likewise), and ``spans`` (per harness span type: count
    and wall-clock duration stats where emitted).
    """
    header, events = read_trace(path)
    categories = {c: 0 for c in CATEGORIES}
    event_types: Dict[str, int] = {}
    for event in events:
        cat = event.get("cat", "?")
        categories[cat] = categories.get(cat, 0) + 1
        name = event.get("event", "?")
        event_types[name] = event_types.get(name, 0) + 1

    updates = [e for e in events if e.get("event") == "aqm_update"]
    aqm_summary: Optional[Dict[str, Any]] = None
    if updates:
        times = [float(e["t"]) for e in updates]
        p_prime = [float(e.get("p_prime") or 0.0) for e in updates]
        delays = [float(e.get("delay") or 0.0) for e in updates]
        converged_at, final_p = _convergence_time(times, p_prime)
        decisions = [e for e in events if e.get("event") == "aqm_decision"]
        verdicts: Dict[str, int] = {}
        for decision in decisions:
            verdict = str(decision.get("verdict", "?"))
            verdicts[verdict] = verdicts.get(verdict, 0) + 1
        aqm_summary = {
            "aqm": updates[0].get("aqm"),
            "updates": len(updates),
            "decisions": dict(sorted(verdicts.items())),
            "first_t": times[0],
            "last_t": times[-1],
            "final_p_prime": final_p,
            "convergence_time": converged_at,
            "mean_delay": sum(delays) / len(delays),
            "max_delay": max(delays),
            "series": {"t": times, "p_prime": p_prime, "delay": delays},
        }

    epochs = [e for e in events if e.get("event") == "engine_epoch"]
    engine_summary: Optional[Dict[str, Any]] = None
    if epochs:
        last = epochs[-1]
        engine_summary = {
            "epochs": len(epochs),
            "last_t": float(last["t"]),
            "events_processed": last.get("events_processed"),
            "events_batched": last.get("events_batched"),
            "batch_breaks": last.get("batch_breaks"),
            "max_wheel": max(int(e.get("wheel") or 0) for e in epochs),
            "max_overflow": max(int(e.get("overflow") or 0) for e in epochs),
            "max_heap": max(int(e.get("heap") or 0) for e in epochs),
            "pool_hits": last.get("pool_hits"),
            "pool_misses": last.get("pool_misses"),
        }

    spans: Dict[str, Dict[str, Any]] = {}
    for event in events:
        if event.get("cat") != "harness":
            continue
        name = str(event.get("event", "?"))
        entry = spans.setdefault(
            name, {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
        )
        entry["count"] += 1
        seconds = event.get("seconds")
        if isinstance(seconds, (int, float)):
            entry["total_seconds"] += seconds
            entry["max_seconds"] = max(entry["max_seconds"], seconds)

    return {
        "schema": header.get("schema"),
        "events": len(events),
        "categories": dict(sorted(categories.items())),
        "event_types": dict(sorted(event_types.items())),
        "aqm": aqm_summary,
        "engine": engine_summary,
        "spans": dict(sorted(spans.items())),
    }


def _sampled_rows(series: Dict[str, List[float]], max_rows: int) -> List[Tuple[float, float, float]]:
    """Evenly sample the (t, p', delay) series down to ``max_rows``."""
    times = series["t"]
    count = len(times)
    if count <= max_rows:
        indices = list(range(count))
    else:
        step = (count - 1) / (max_rows - 1)
        indices = sorted({round(i * step) for i in range(max_rows)})
    return [
        (times[i], series["p_prime"][i], series["delay"][i]) for i in indices
    ]


def format_trace_summary(summary: Dict[str, Any], max_rows: int = 12) -> str:
    """Render :func:`summarize_trace` output as a terminal report."""
    lines = [
        f"trace schema {summary['schema']} — {summary['events']} events",
        "",
        "events by category:",
    ]
    for cat, count in summary["categories"].items():
        lines.append(f"  {cat:8s} {count}")
    lines.append("events by type:")
    for name, count in summary["event_types"].items():
        lines.append(f"  {name:16s} {count}")

    aqm = summary.get("aqm")
    if aqm is not None:
        lines.append("")
        lines.append(
            f"control loop ({aqm['aqm']}): {aqm['updates']} updates over "
            f"t=[{aqm['first_t']:.3f}, {aqm['last_t']:.3f}]s"
        )
        if aqm["decisions"]:
            verdicts = ", ".join(
                f"{name}={count}" for name, count in aqm["decisions"].items()
            )
            lines.append(f"  decisions: {verdicts}")
        lines.append(
            f"  mean queue delay {aqm['mean_delay'] * 1e3:.2f} ms, "
            f"max {aqm['max_delay'] * 1e3:.2f} ms"
        )
        if aqm["final_p_prime"] is not None:
            settled = (
                f"converged at t={aqm['convergence_time']:.3f}s"
                if aqm["convergence_time"] is not None
                else "did not converge"
            )
            lines.append(
                f"  final p' = {aqm['final_p_prime']:.6f} ({settled})"
            )
        lines.append("  t [s]      p'          delay [ms]")
        for t, p_prime, delay in _sampled_rows(aqm["series"], max_rows):
            lines.append(f"  {t:8.3f}  {p_prime:.6f}    {delay * 1e3:9.3f}")

    engine = summary.get("engine")
    if engine is not None:
        lines.append("")
        lines.append(
            f"engine: {engine['epochs']} epochs to t={engine['last_t']:.3f}s, "
            f"{engine['events_processed']} events processed, "
            f"{engine['events_batched']} batched "
            f"({engine['batch_breaks']} batch breaks)"
        )
        lines.append(
            f"  lane peaks: wheel={engine['max_wheel']} "
            f"overflow={engine['max_overflow']} heap={engine['max_heap']}; "
            f"pool hits/misses: {engine['pool_hits']}/{engine['pool_misses']}"
        )

    spans = summary.get("spans") or {}
    if spans:
        lines.append("")
        lines.append("harness spans:")
        for name, entry in spans.items():
            duration = (
                f" total {entry['total_seconds']:.3f}s"
                f" max {entry['max_seconds']:.3f}s"
                if entry["total_seconds"]
                else ""
            )
            lines.append(f"  {name:16s} {entry['count']}{duration}")
    return "\n".join(lines)
