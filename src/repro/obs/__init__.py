"""Observability: structured run telemetry with zero overhead when off.

Three pieces (see ``docs/OBSERVABILITY.md`` for the schema reference and
recipes):

* :mod:`repro.obs.trace` — the :class:`Tracer` protocol, the
  :class:`JsonlTracer` sink, and the AQM instrumentation hook
  (:func:`install_aqm_tracer`).  Tracers *observe* the simulation; they
  never schedule events or feed values back into simulation state (the
  ``OBS`` static-analysis rule enforces this), so digests are bit-exact
  with tracing on or off.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, the named
  counter/gauge registry that `Simulator`, AQMs, `Link`, the shared
  result cache and the supervisor report into; its snapshot becomes the
  ``telemetry`` block on :class:`~repro.harness.frozen.FrozenResult`
  and in ``BENCH_<date>.json``.
* :mod:`repro.obs.summary` — offline analysis of a JSONL trace:
  per-category event counts, control-loop convergence time, harness
  span durations and the ``p'``/queue-delay time-series behind the
  ``repro trace summarize`` subcommand.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.summary import format_trace_summary, read_trace, summarize_trace
from repro.obs.trace import (
    CATEGORIES,
    TRACE_SCHEMA_VERSION,
    JsonlTracer,
    RecordingTracer,
    Tracer,
    engine_tracer,
    install_aqm_tracer,
)

__all__ = [
    "CATEGORIES",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "JsonlTracer",
    "RecordingTracer",
    "engine_tracer",
    "install_aqm_tracer",
    "MetricsRegistry",
    "read_trace",
    "summarize_trace",
    "format_trace_summary",
]
