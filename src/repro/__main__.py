"""``python -m repro`` — the command-line interface."""

import sys

from repro.cli import main
from repro.errors import ConfigError

if __name__ == "__main__":
    try:
        sys.exit(main())
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        sys.exit(2)
