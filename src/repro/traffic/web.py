"""Web-like short-flow workload generator.

Section 6 notes that "mixed short flow completion times with PIE, bare
PIE and PI2 under both heavy and light Web-like workloads were essentially
the same"; this generator provides those workloads so the short-FCT
benchmark can check the claim.

The model is the standard one used in AQM evaluations (and in the paper's
companion DualQ evaluation [12]): flows arrive as a Poisson process and
flow sizes are heavy-tailed.  We use a bounded Pareto size distribution
(shape 1.2, mean configurable) — most flows are a handful of segments,
a few are large — and each flow runs a fresh TCP sender to completion.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional

from repro.sim.engine import Simulator

__all__ = ["WebWorkload", "bounded_pareto_segments"]


def bounded_pareto_segments(
    rng: random.Random,
    shape: float = 1.2,
    minimum: int = 2,
    maximum: int = 2000,
) -> int:
    """Draw a flow size in segments from a bounded Pareto distribution."""
    if shape <= 0:
        raise ValueError(f"shape must be positive (got {shape})")
    if not 0 < minimum < maximum:
        raise ValueError(f"need 0 < minimum < maximum (got {minimum}, {maximum})")
    u = rng.random()
    lo, hi = float(minimum), float(maximum)
    # Inverse-CDF sampling of the bounded Pareto.
    x = (-(u * hi ** shape - u * lo ** shape - hi ** shape) / (hi ** shape * lo ** shape)) ** (
        -1.0 / shape
    )
    return max(minimum, min(maximum, int(round(x))))


class WebWorkload:
    """Poisson arrivals of short TCP flows.

    Parameters
    ----------
    sim:
        The driving simulator.
    spawn_flow:
        Callback ``(flow_size_segments, on_complete) -> None`` provided by
        the harness; it creates and starts a fresh sender/receiver pair.
        ``on_complete`` receives the flow completion time in seconds.
    arrival_rate:
        Mean flow arrivals per second (load knob: 'light' vs 'heavy').
    rng:
        Seeded random stream (arrivals and sizes).
    """

    def __init__(
        self,
        sim: Simulator,
        spawn_flow: Callable[[int, Callable[[float], None]], None],
        arrival_rate: float,
        rng: random.Random,
        size_shape: float = 1.2,
        size_min: int = 2,
        size_max: int = 2000,
    ):
        if arrival_rate <= 0:
            raise ValueError(f"arrival rate must be positive (got {arrival_rate})")
        self.sim = sim
        self.spawn_flow = spawn_flow
        self.arrival_rate = arrival_rate
        self.rng = rng
        self.size_shape = size_shape
        self.size_min = size_min
        self.size_max = size_max
        self.flows_started = 0
        self.completion_times: List[float] = []
        self.flow_sizes: List[int] = []
        self._stopped = False

    def start(self, at: float = 0.0, until: Optional[float] = None) -> None:
        self._until = until
        self.sim.at(at, self._arrival)

    def stop(self) -> None:
        self._stopped = True

    def _arrival(self) -> None:
        if self._stopped:
            return
        if self._until is not None and self.sim.now >= self._until:
            return
        size = bounded_pareto_segments(
            self.rng, self.size_shape, self.size_min, self.size_max
        )
        self.flows_started += 1
        self.flow_sizes.append(size)
        self.spawn_flow(size, self.completion_times.append)
        gap = self.rng.expovariate(self.arrival_rate)
        self.sim.schedule(gap, self._arrival)

    # ------------------------------------------------------------------
    def mean_fct(self) -> float:
        """Mean flow completion time over completed flows (seconds)."""
        if not self.completion_times:
            return math.nan
        return sum(self.completion_times) / len(self.completion_times)

    def percentile_fct(self, q: float) -> float:
        """The q-th percentile (0–100) of completion times."""
        if not self.completion_times:
            return math.nan
        data = sorted(self.completion_times)
        idx = min(len(data) - 1, max(0, int(round(q / 100.0 * (len(data) - 1)))))
        return data[idx]
