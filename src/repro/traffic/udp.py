"""Constant-bit-rate unresponsive (UDP-like) traffic source.

Used by the paper's 'Mixture of TCP and UDP traffic' scenarios (Figure 11c
and Figure 14b: two UDP flows at 6 Mb/s each into a 10 Mb/s bottleneck) to
test AQM behaviour under unresponsive overload.  The source emits
fixed-size packets at a constant rate; it ignores all feedback, which is
the point — the AQM must push its probability high (or saturate and let
tail-drop act) to protect responsive traffic.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import DEFAULT_MSS, ECN, HEADER_BYTES, Packet
from repro.sim.engine import Simulator

__all__ = ["UdpSource"]


class UdpSource:
    """Sends ``rate_bps`` of Not-ECT (by default) packets until stopped."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        transmit: Callable[[Packet], None],
        rate_bps: float,
        packet_size: int = DEFAULT_MSS + HEADER_BYTES,
        ecn: ECN = ECN.NOT_ECT,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive (got {rate_bps})")
        if packet_size <= 0:
            raise ValueError(f"packet size must be positive (got {packet_size})")
        self.sim = sim
        self.flow_id = flow_id
        self.transmit = transmit
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.ecn = ecn
        self.packets_sent = 0
        self._stopped = False
        self._interval = packet_size * 8.0 / rate_bps

    def start(self, at: float = 0.0, until: Optional[float] = None) -> None:
        """Begin sending at ``at``; optionally stop at ``until``."""
        self._until = until
        self.sim.at(at, self._send_next)

    def stop(self) -> None:
        self._stopped = True

    def _send_next(self) -> None:
        if self._stopped:
            return
        if self._until is not None and self.sim.now >= self._until:
            return
        pkt = Packet(
            flow_id=self.flow_id,
            size=self.packet_size,
            ecn=self.ecn,
            send_time=self.sim.now,
        )
        self.packets_sent += 1
        self.transmit(pkt)
        self.sim.schedule(self._interval, self._send_next)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<UdpSource flow={self.flow_id} {self.rate_bps / 1e6:.1f}Mbps>"
