"""Latency-sensitive application traffic (VoIP / gaming style).

The paper's introduction motivates AQM with interactive applications —
"voice, conversational and interactive video, finance apps, online
gaming" — whose quality "tends to be dominated by worst case delays".
This module provides the measurement half of that story:

* :class:`RealtimeSource` — an isochronous stream of small packets
  (defaults model a G.711-ish voice flow: 200 bytes every 20 ms);
* :class:`RealtimeSink` — records each packet's one-way delay and
  computes the QoE-facing statistics: delay percentiles (P99 is the
  number the paper's worst-case argument is about), RFC 3550-style
  smoothed jitter, and loss.

The examples run one of these flows through a bottleneck congested by
bulk TCP under different AQMs — the end-to-end demonstration of what
"20 ms target" (or DualQ's ~1 ms) means for an application.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from repro.net.packet import ECN, Packet
from repro.sim.engine import Simulator

__all__ = ["RealtimeSource", "RealtimeSink"]


class RealtimeSource:
    """Isochronous small-packet sender (unresponsive, like real RTP)."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        transmit: Callable[[Packet], None],
        interval: float = 0.020,
        payload_bytes: int = 200,
        ecn: ECN = ECN.NOT_ECT,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive (got {interval})")
        if payload_bytes <= 0:
            raise ValueError(f"payload must be positive (got {payload_bytes})")
        self.sim = sim
        self.flow_id = flow_id
        self.transmit = transmit
        self.interval = interval
        self.payload_bytes = payload_bytes
        self.ecn = ecn
        self.sent = 0
        self._seq = 0
        self._stopped = False
        self._until: Optional[float] = None

    def start(self, at: float = 0.0, until: Optional[float] = None) -> None:
        self._until = until
        self.sim.at(at, self._tick)

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        if self._until is not None and self.sim.now >= self._until:
            return
        pkt = Packet(
            flow_id=self.flow_id,
            size=self.payload_bytes,
            seq=self._seq,
            ecn=self.ecn,
            send_time=self.sim.now,
        )
        self._seq += 1
        self.sent += 1
        self.transmit(pkt)
        self.sim.schedule(self.interval, self._tick)


class RealtimeSink:
    """Receives a realtime stream and accumulates QoE statistics.

    One-way delay is measured from each packet's ``send_time``;
    ``base_delay`` (the propagation component) can be subtracted so the
    numbers isolate queuing.  Jitter follows RFC 3550's smoothed
    inter-arrival estimator: J ← J + (|D| − J)/16.
    """

    def __init__(self, sim: Simulator, base_delay: float = 0.0):
        if base_delay < 0:
            raise ValueError(f"base delay cannot be negative (got {base_delay})")
        self.sim = sim
        self.base_delay = base_delay
        self.delays: List[float] = []
        self.jitter = 0.0
        self.received = 0
        self.last_seq = -1
        self.reordered = 0
        self._prev_transit: Optional[float] = None

    def deliver(self, packet: Packet) -> None:
        now = self.sim.now
        transit = now - packet.send_time
        self.received += 1
        self.delays.append(max(0.0, transit - self.base_delay))
        if packet.seq < self.last_seq:
            self.reordered += 1
        self.last_seq = max(self.last_seq, packet.seq)
        if self._prev_transit is not None:
            d = abs(transit - self._prev_transit)
            self.jitter += (d - self.jitter) / 16.0
        self._prev_transit = transit

    # ------------------------------------------------------------------
    def loss_fraction(self, sent: int) -> float:
        if sent <= 0:
            return math.nan
        return 1.0 - self.received / sent

    def delay_percentile(self, q: float) -> float:
        if not self.delays:
            return math.nan
        data = sorted(self.delays)
        idx = min(len(data) - 1, max(0, int(round(q / 100.0 * (len(data) - 1)))))
        return data[idx]

    def mean_delay(self) -> float:
        if not self.delays:
            return math.nan
        return sum(self.delays) / len(self.delays)
