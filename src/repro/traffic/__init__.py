"""Traffic substrate: unresponsive CBR sources and web-like short flows."""

from repro.traffic.realtime import RealtimeSink, RealtimeSource
from repro.traffic.udp import UdpSource
from repro.traffic.web import WebWorkload, bounded_pareto_segments

__all__ = [
    "UdpSource",
    "WebWorkload",
    "bounded_pareto_segments",
    "RealtimeSource",
    "RealtimeSink",
]
