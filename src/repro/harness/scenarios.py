"""Canned experiment builders for every scenario in the paper's evaluation.

Each function returns an :class:`~repro.harness.experiment.Experiment`
reproducing one of Section 6's setups, parameterized by the AQM factory
(so every scenario can run under PIE, bare-PIE, PI, PI2 or coupled) and by
a ``time_scale`` that shrinks the paper's 50 s stages for test/benchmark
budgets without changing the dynamics being exercised (stages remain many
multiples of both the RTT and the AQM update interval).

Paper reference points are collected in :data:`PAPER_EXPECTATIONS` so
benchmarks can print expected-vs-measured side by side.
"""

from __future__ import annotations


from repro.harness.experiment import AqmFactory, Experiment, FlowGroup, UdpGroup

__all__ = [
    "light_tcp",
    "heavy_tcp",
    "tcp_plus_udp",
    "varying_intensity",
    "varying_capacity",
    "coexistence_pair",
    "coexistence_mix",
    "MBPS",
    "PAPER_EXPECTATIONS",
]

#: Convenience unit.
MBPS = 1e6


def light_tcp(
    aqm_factory: AqmFactory,
    cc: str = "reno",
    capacity_bps: float = 10 * MBPS,
    rtt: float = 0.100,
    duration: float = 50.0,
    seed: int = 1,
) -> Experiment:
    """Figure 11a: light load — 5 long-running TCP flows, 10 Mb/s, 100 ms."""
    return Experiment(
        capacity_bps=capacity_bps,
        duration=duration,
        aqm_factory=aqm_factory,
        flows=[FlowGroup(cc=cc, count=5, rtt=rtt)],
        warmup=min(10.0, duration / 3),
        seed=seed,
    )


def heavy_tcp(
    aqm_factory: AqmFactory,
    cc: str = "reno",
    capacity_bps: float = 10 * MBPS,
    rtt: float = 0.100,
    duration: float = 50.0,
    seed: int = 1,
) -> Experiment:
    """Figure 11b: heavy load — 50 long-running TCP flows."""
    return Experiment(
        capacity_bps=capacity_bps,
        duration=duration,
        aqm_factory=aqm_factory,
        flows=[FlowGroup(cc=cc, count=50, rtt=rtt)],
        warmup=min(10.0, duration / 3),
        seed=seed,
    )


def tcp_plus_udp(
    aqm_factory: AqmFactory,
    cc: str = "reno",
    capacity_bps: float = 10 * MBPS,
    rtt: float = 0.100,
    udp_rate_bps: float = 6 * MBPS,
    udp_count: int = 2,
    duration: float = 50.0,
    seed: int = 1,
) -> Experiment:
    """Figure 11c: 5 TCP flows + 2 unresponsive 6 Mb/s UDP flows
    (12 Mb/s of UDP into a 10 Mb/s bottleneck — unresponsive overload)."""
    return Experiment(
        capacity_bps=capacity_bps,
        duration=duration,
        aqm_factory=aqm_factory,
        flows=[FlowGroup(cc=cc, count=5, rtt=rtt)],
        udp=[UdpGroup(rate_bps=udp_rate_bps, count=udp_count)],
        warmup=min(10.0, duration / 3),
        seed=seed,
    )


def varying_intensity(
    aqm_factory: AqmFactory,
    cc: str = "reno",
    capacity_bps: float = 10 * MBPS,
    rtt: float = 0.100,
    stage: float = 50.0,
    seed: int = 1,
) -> Experiment:
    """Figures 6 and 13: 10:30:50:30:10 flows over five equal stages.

    Ten flows run throughout; twenty more join for stages 2–4; a further
    twenty only for stage 3.  Figure 6 uses 100 Mb/s / 10 ms RTT;
    Figure 13 uses 10 Mb/s / 100 ms RTT (the defaults here).
    """
    return Experiment(
        capacity_bps=capacity_bps,
        duration=5 * stage,
        aqm_factory=aqm_factory,
        flows=[
            FlowGroup(cc=cc, count=10, rtt=rtt),
            FlowGroup(cc=cc, count=20, rtt=rtt, start=stage, stop=4 * stage),
            FlowGroup(cc=cc, count=20, rtt=rtt, start=2 * stage, stop=3 * stage),
        ],
        warmup=min(10.0, stage / 2),
        seed=seed,
    )


def varying_capacity(
    aqm_factory: AqmFactory,
    cc: str = "reno",
    rtt: float = 0.100,
    flows: int = 20,
    stage: float = 50.0,
    high_bps: float = 100 * MBPS,
    low_bps: float = 20 * MBPS,
    seed: int = 1,
) -> Experiment:
    """Figure 12: link capacity 100:20:100 Mb/s over three equal stages."""
    return Experiment(
        capacity_bps=high_bps,
        duration=3 * stage,
        aqm_factory=aqm_factory,
        flows=[FlowGroup(cc=cc, count=flows, rtt=rtt)],
        capacity_schedule=[(stage, low_bps), (2 * stage, high_bps)],
        warmup=min(10.0, stage / 2),
        seed=seed,
    )


def coexistence_pair(
    aqm_factory: AqmFactory,
    cc_a: str = "dctcp",
    cc_b: str = "cubic",
    capacity_bps: float = 40 * MBPS,
    rtt: float = 0.010,
    duration: float = 30.0,
    warmup: float = 10.0,
    seed: int = 1,
) -> Experiment:
    """Figures 15–18: one long-running flow of each congestion control.

    The paper sweeps link ∈ {4, 12, 40, 120, 200} Mb/s ×
    RTT ∈ {5, 10, 20, 50, 100} ms; this builder makes one grid cell.
    """
    return Experiment(
        capacity_bps=capacity_bps,
        duration=duration,
        aqm_factory=aqm_factory,
        flows=[
            FlowGroup(cc=cc_a, count=1, rtt=rtt, label=cc_a),
            FlowGroup(cc=cc_b, count=1, rtt=rtt, label=cc_b),
        ],
        warmup=warmup,
        seed=seed,
    )


def coexistence_mix(
    aqm_factory: AqmFactory,
    n_a: int,
    n_b: int,
    cc_a: str = "dctcp",
    cc_b: str = "cubic",
    capacity_bps: float = 40 * MBPS,
    rtt: float = 0.010,
    duration: float = 30.0,
    warmup: float = 10.0,
    seed: int = 1,
) -> Experiment:
    """Figures 19–20: ``n_a`` flows of class A vs ``n_b`` of class B
    (the paper's A1-B1 … A10-B0 combinations at 40 Mb/s / 10 ms)."""
    flows = []
    if n_a > 0:
        flows.append(FlowGroup(cc=cc_a, count=n_a, rtt=rtt, label=cc_a))
    if n_b > 0:
        flows.append(FlowGroup(cc=cc_b, count=n_b, rtt=rtt, label=cc_b))
    if not flows:
        raise ValueError("at least one flow is required")
    return Experiment(
        capacity_bps=capacity_bps,
        duration=duration,
        aqm_factory=aqm_factory,
        flows=flows,
        warmup=warmup,
        seed=seed,
    )


#: Shape-level expectations from the paper, printed by the benchmarks.
PAPER_EXPECTATIONS = {
    "fig11_target_delay": 0.020,
    "fig15_pie_cubic_dctcp_ratio": 0.1,   # DCTCP starves Cubic ~10x under PIE
    "fig15_pi2_cubic_dctcp_ratio": 1.0,   # coupled PI2 balances to ~1
    "fig16_target_delay": 0.020,
    "fig18_min_utilization": 0.90,         # high utilization across the grid
    "fig12_pie_peak_delay": 0.510,         # 100 ms-sampled peak at t=50 s
    "fig12_pi2_peak_delay": 0.250,
}
