"""Detached, picklable experiment results.

A live :class:`~repro.harness.experiment.ExperimentResult` drags the whole
testbed behind it — simulator, event heap, TCP state machines, per-flow
callbacks — which is exactly what the figures *don't* need and exactly
what :mod:`pickle` can't move: receiver callbacks are closures, the heap
still holds pending bound-method events.  :func:`freeze_result` copies the
figure-level read-outs into a :class:`FrozenResult`, a plain bag of time
series, arrays and counters that

* pickles cheaply (process-pool workers return it to the parent,
  :mod:`repro.harness.cache` stores it on disk), and
* answers the same metric API — it shares the
  :class:`~repro.harness.experiment.ResultMetrics` mixin, so
  ``sojourn_summary``/``balance``/``mean_utilization``/… behave
  identically to the live object.

What a frozen result deliberately does **not** carry: the testbed
(``.bed``), the AQM instance (``.aqm``), or per-flow congestion-window
traces — anything that would re-tether it to live simulation state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.harness.experiment import Experiment, ExperimentResult, ResultMetrics
from repro.metrics.series import TimeSeries

__all__ = ["FrozenResult", "freeze_result"]


class FrozenResult(ResultMetrics):
    """Snapshot of one completed run's read-outs, detached from the testbed."""

    def __init__(
        self,
        *,
        duration: float,
        warmup: float,
        queue_delay: TimeSeries,
        probability: TimeSeries,
        raw_probability: TimeSeries,
        utilization: TimeSeries,
        sojourns: TimeSeries,
        goodputs: Dict[str, List[float]],
        queue_stats,
        fault_timeline: List[Tuple[float, str]],
        invariant_checks: int,
        experiment: Optional[Experiment] = None,
        events_processed: int = 0,
        telemetry: Optional[Dict[str, object]] = None,
    ):
        self.duration = duration
        self.warmup = warmup
        self.queue_delay = queue_delay
        self.probability = probability
        self.raw_probability = raw_probability
        self.utilization = utilization
        self.sojourns = sojourns
        self._goodputs = goodputs
        self.queue_stats = queue_stats
        self.fault_timeline = fault_timeline
        self.invariant_checks = invariant_checks
        #: The experiment that produced this result, when it was picklable
        #: (named factories); None otherwise.
        self.experiment = experiment
        #: Engine events the run processed — the perf harness's events/sec
        #: numerator.
        self.events_processed = events_processed
        #: Flat end-of-run metric snapshot from the run's
        #: :class:`~repro.obs.metrics.MetricsRegistry` (None for results
        #: frozen before the observability layer existed, e.g. old cache
        #: entries — though the code fingerprint keys those out anyway).
        self.telemetry = telemetry

    # -- raw accessors required by ResultMetrics ---------------------------
    def sojourn_samples(self, from_warmup: bool = True) -> np.ndarray:
        """Per-packet bottleneck sojourn times, post-warmup by default."""
        t0 = self.warmup if from_warmup else 0.0
        return self.sojourns.window(t0, float("inf"))

    def goodputs(self, label: str) -> List[float]:
        """Per-flow goodput (bits/second) for one flow-class label."""
        return list(self._goodputs.get(label, []))

    def class_labels(self) -> List[str]:
        """Flow-class labels captured at freeze time."""
        return list(self._goodputs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FrozenResult duration={self.duration:.1f}s "
            f"classes={sorted(self._goodputs)}>"
        )


def freeze_result(
    result: ExperimentResult, keep_experiment: bool = True
) -> FrozenResult:
    """Copy a live result's figure-level read-outs into a :class:`FrozenResult`.

    The series objects are taken by reference, not copied — a completed
    run never appends again, and the live result is normally discarded
    right after freezing (worker processes, cache stores).
    """
    bed = result.bed
    goodputs = {
        label: [float(g) for g in result.goodputs(label)]
        for label in result.class_labels()
    }
    return FrozenResult(
        duration=result.duration,
        warmup=result.warmup,
        queue_delay=bed.queue_delay,
        probability=bed.probability,
        raw_probability=bed.raw_probability,
        utilization=bed.utilization,
        sojourns=bed.sojourns,
        goodputs=goodputs,
        queue_stats=bed.queue.stats,
        fault_timeline=result.fault_timeline,
        invariant_checks=result.invariant_checks,
        experiment=result.experiment if keep_experiment else None,
        events_processed=bed.sim.events_processed,
        telemetry=getattr(result, "telemetry", None),
    )
