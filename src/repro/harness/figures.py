"""Programmatic figure-data generators.

Each function regenerates the *data* behind one of the paper's figures
and returns a :class:`FigureData` (headers + rows + a note about the
paper's expected shape), for the CLI's ``figure`` subcommand and for
notebook/scripting use.  The pytest benchmarks in ``benchmarks/`` are the
*assertion* layer for the same experiments; these generators favour
moderate default durations so a figure is obtainable in seconds-to-a-
minute from the command line, with a ``scale`` knob to trade time for
smoothness.

Crash safety
------------
Simulation-backed figures run their cells through a
:class:`FigureRunner`, which gives the figure pipeline the same
robustness stack as grid sweeps: a crash-safe
:class:`~repro.harness.journal.ResultJournal` (``journal=`` — every
completed cell is fsync'd as it finishes), bit-exact resume
(``resume=True`` replays journaled cells instead of re-simulating),
optional supervised execution (``supervisor=`` — per-cell watchdogged
worker processes), and shared-cache-aware scheduling (cells another
process is already computing are deferred, so a fleet regenerating the
same figure computes each cell once).  A failing cell raises
:class:`~repro.errors.FigureGenerationError` naming the figure, the
cell and the virtual time of death.

Example
-------
>>> from repro.harness.figures import FIGURES
>>> data = FIGURES["fig05"]()
>>> data.headers
['p', 'tune(p)', 'sqrt(2p)']
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.bode import margins_reno_pi, margins_reno_pi2, margins_reno_pie, margins_scal_pi
from repro.analysis.fluid import PAPER_PI2_GAINS, PAPER_PIE_GAINS, PAPER_SCAL_GAINS
from repro.aqm.tune_table import tune_table_rows
from repro.errors import ConfigError, FigureGenerationError
from repro.harness.experiment import run_experiment
from repro.harness.factories import coupled_factory, pi2_factory, pi_factory, pie_factory
from repro.harness.scenarios import (
    MBPS,
    heavy_tcp,
    light_tcp,
    tcp_plus_udp,
    varying_capacity,
    varying_intensity,
)
from repro.harness.sweep import format_table, run_mix_sweep

__all__ = [
    "FigureData",
    "FigureRunReport",
    "FigureRunner",
    "FIGURES",
    "MIN_STAGE_SECONDS",
    "generate_figure",
]

#: Shortest per-stage window the staged-intensity figures accept.  Below
#: this the settle offset and the averaging window collapse into nothing
#: and every per-stage statistic would be NaN.
MIN_STAGE_SECONDS = 0.5


@dataclass
class FigureRunReport:
    """How one figure's simulation cells were produced.

    ``executed`` cells were simulated, ``replayed`` came from the
    journal (resume), ``cache_hits`` from the result cache,
    ``journal_appends``/``compactions`` describe journal activity, and
    ``deferred`` counts scheduling decisions that postponed a cell
    another process held in flight in the shared cache.  ``torn_journal``
    is True when resume found (and tolerated) a crash-torn final record.
    """

    figure: str = ""
    executed: int = 0
    replayed: int = 0
    cache_hits: int = 0
    journal_appends: int = 0
    compactions: int = 0
    deferred: int = 0
    torn_journal: bool = False

    def summary(self) -> str:
        """One-line counter summary for CLI output."""
        parts = [
            f"executed={self.executed}",
            f"replayed={self.replayed}",
            f"cache_hits={self.cache_hits}",
            f"journal_appends={self.journal_appends}",
        ]
        if self.compactions:
            parts.append(f"compactions={self.compactions}")
        if self.deferred:
            parts.append(f"deferred={self.deferred}")
        if self.torn_journal:
            parts.append("torn_journal=yes")
        return " ".join(parts)


@dataclass
class FigureData:
    """Rows regenerating one figure, plus the paper's expected shape."""

    figure: str
    headers: List[str]
    rows: List[Tuple]
    note: str = ""
    report: Optional[FigureRunReport] = None

    def table(self) -> str:
        """Render headers + rows as an aligned text table."""
        title = f"{self.figure}" + (f"\n{self.note}" if self.note else "")
        return format_table(self.headers, self.rows, title=title)

    def to_csv(self, path) -> None:
        """Write the figure's rows to ``path`` as CSV (always UTF-8)."""
        import csv
        from pathlib import Path

        with Path(path).open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.headers)
            writer.writerows(self.rows)


def _gm(m):
    return float("nan") if m.gain_margin_db is None else m.gain_margin_db


class FigureRunner:
    """Execution context shared by every simulation cell of one figure.

    Bundles the knobs that used to be threaded positionally through each
    generator (``jobs``/``cache``/``tracer``) with the crash-safety
    stack: ``journal`` (a :class:`~repro.harness.journal.ResultJournal`)
    records each completed cell durably; ``resume=True`` replays
    journaled cells bit-exactly; ``supervisor`` (a
    :class:`~repro.harness.supervisor.SupervisorConfig`) runs each cell
    in a watchdogged worker process.  The runner tallies what happened
    in :attr:`report`.

    With none of those set, :meth:`run_cell` is the plain in-process
    path — the tracer sees AQM/engine events and results are
    bit-identical to what the generators always produced.
    """

    def __init__(self, figure: str, jobs=None, cache=None, tracer=None,
                 journal=None, resume: bool = False, supervisor=None):
        if resume and journal is None:
            raise ConfigError("resume=True requires a journal")
        self.figure = figure
        self.jobs = jobs
        self.cache = cache
        self.tracer = tracer
        self.journal = journal
        self.resume = resume
        self.supervisor = supervisor
        self.report = FigureRunReport(figure=figure)
        self._emit = tracer.emit if tracer is not None else None
        self._replay: Dict[str, object] = {}
        if resume and journal is not None:
            replay = journal.read()
            self._replay = replay.replay_map()
            self.report.torn_journal = replay.torn

    # -- single cells ----------------------------------------------------
    def run_cell(self, label: str, experiment):
        """Produce one cell: journal replay → cache → execute (+ append).

        Raises :class:`~repro.errors.FigureGenerationError` when the
        cell fails, carrying the figure name, the cell label and the
        worker-side error type / sim-time — a broken cell fails *here*,
        not later in plotting code handed a ``None``.
        """
        if (self.cache is None and self.journal is None
                and self.supervisor is None):
            # Plain path: in-process run; the tracer sees AQM/engine
            # events and simulation errors propagate with their own
            # sim-time context.
            self.report.executed += 1
            return run_experiment(experiment, tracer=self.tracer)

        from repro.harness.cache import experiment_cache_key

        key = experiment_cache_key(experiment)
        if key is not None and key in self._replay:
            self.report.replayed += 1
            self._emit_cell(label, "hit")
            return self._replay[key]
        if (self.cache is not None and key is not None
                and self.supervisor is None):
            hit = self.cache.get(key)
            if hit is not None:
                self.report.cache_hits += 1
                if self._emit is not None:
                    self._emit("harness", "cache_hit", 0.0, {"label": label})
                self._journal_append(key, label, hit)
                self._emit_cell(label, self._journal_state(key))
                return hit
        result = self._execute(label, experiment)
        self._journal_append(key, label, result)
        self._emit_cell(label, self._journal_state(key))
        return result

    def _execute(self, label: str, experiment):
        """Run one cell through the sweep machinery; raise on failure."""
        from repro.harness.parallel import SweepTask, execute_tasks

        task = SweepTask(label, experiment)
        if self.supervisor is not None:
            from repro.harness.supervisor import run_supervised_tasks

            pairs, sub = run_supervised_tasks(
                [task], jobs=1, on_error="capture", cache=self.cache,
                supervisor=self.supervisor, tracer=self.tracer,
            )
            self.report.executed += sub.executed
            self.report.cache_hits += sub.cache_hits
            self.report.deferred += sub.deferred
            result, failure = pairs[0]
        else:
            # max_retries=0: a figure presents specific seeds, so a
            # failing cell must fail loudly rather than be silently
            # retried on a bumped seed (sweeps may choose otherwise).
            (result, failure), = execute_tasks(
                [task], jobs=1, on_error="capture", max_retries=0,
                cache=self.cache, tracer=self.tracer,
            )
            if result is not None:
                self.report.executed += 1
        if result is None:
            raise self._cell_error(label, failure)
        return result

    def _cell_error(self, label: str, failure) -> FigureGenerationError:
        if failure is None:
            return FigureGenerationError(
                f"figure {self.figure} cell {label!r} produced no result "
                f"and no failure report",
                figure=self.figure, label=label,
            )
        where = []
        if failure.sim_time is not None:
            where.append(f"t={failure.sim_time:.6f}s")
        if failure.component:
            where.append(f"component={failure.component}")
        suffix = f" [{' '.join(where)}]" if where else ""
        return FigureGenerationError(
            f"figure {self.figure} cell {label!r} failed: "
            f"{failure.error_type}: {failure.error}{suffix}",
            figure=self.figure,
            label=label,
            error_type=failure.error_type,
            sim_time=failure.sim_time,
            component=failure.component,
        )

    # -- journal ---------------------------------------------------------
    def _journal_append(self, key: Optional[str], label: str, result) -> None:
        if self.journal is None or key is None:
            return
        started = time.monotonic()
        self.journal.append(key, label, result)
        self.report.journal_appends += 1
        if self._emit is not None:
            self._emit("harness", "journal_append", 0.0, {
                "label": label,
                "seconds": time.monotonic() - started,
            })

    def _journal_state(self, key: Optional[str]) -> str:
        return "append" if (self.journal is not None and key is not None) \
            else "miss"

    def _emit_cell(self, label: str, journal_state: str) -> None:
        """One ``figure_cell`` span per cell, carrying journal hit/miss."""
        if self._emit is not None:
            self._emit("harness", "figure_cell", 0.0, {
                "figure": self.figure,
                "label": label,
                "journal": journal_state,
            })

    # -- sweep-backed figures (fig15/fig19) ------------------------------
    def sweep_kwargs(self) -> dict:
        """Forward this runner's execution context to the sweep APIs."""
        kwargs: dict = dict(jobs=self.jobs, cache=self.cache,
                            tracer=self.tracer)
        if self.journal is not None:
            kwargs["journal"] = self.journal
            kwargs["resume"] = self.resume
        if self.supervisor is not None:
            kwargs["supervisor"] = self.supervisor
        return kwargs

    def absorb(self, outcome) -> None:
        """Fold a sweep's ``recovery`` report into this figure's report."""
        recovery = getattr(outcome, "recovery", None)
        if recovery is None:
            return
        self.report.executed += recovery.executed
        self.report.replayed += recovery.replayed
        self.report.cache_hits += recovery.cache_hits
        self.report.journal_appends += recovery.journal_appends
        self.report.deferred += recovery.deferred
        self.report.torn_journal = (
            self.report.torn_journal or recovery.torn_journal
        )

    def finish(self) -> None:
        """Final accounting: journal compactions + one ``figure_done`` span."""
        if self.journal is not None:
            self.report.compactions = self.journal.compactions
        if self._emit is not None:
            self._emit("harness", "figure_done", 0.0, {
                "figure": self.figure,
                "executed": self.report.executed,
                "replayed": self.report.replayed,
                "journal_appends": self.report.journal_appends,
            })


def _ensure_runner(figure: str, runner, jobs, cache, tracer) -> FigureRunner:
    """Figure functions accept a full runner (from :func:`generate_figure`)
    or the legacy ``jobs``/``cache``/``tracer`` trio (direct calls)."""
    if runner is not None:
        return runner
    return FigureRunner(figure, jobs=jobs, cache=cache, tracer=tracer)


def fig04(scale: float = 1.0, jobs=None, cache=None, tracer=None,
          runner=None) -> FigureData:
    """Bode gain margins for PI on Reno: auto vs fixed tunes."""
    rows = []
    for p in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 0.5, 1.0):
        rows.append(
            (
                p,
                _gm(margins_reno_pie(p, 0.1, PAPER_PIE_GAINS)),
                _gm(margins_reno_pi(p, 0.1, PAPER_PIE_GAINS, tune_factor=1.0)),
                _gm(margins_reno_pi(p, 0.1, PAPER_PIE_GAINS, tune_factor=1 / 8)),
            )
        )
    return FigureData(
        "Figure 4", ["p", "GM auto [dB]", "GM tune=1 [dB]", "GM tune=1/8 [dB]"],
        rows, "paper shape: fixed-gain diagonal goes negative at low p",
    )


def fig05(scale: float = 1.0, jobs=None, cache=None, tracer=None,
          runner=None) -> FigureData:
    """PIE's stepped tune factor vs the analytic √(2p)."""
    rows = [(p, t, s) for p, t, s in tune_table_rows(points_per_decade=2)]
    return FigureData(
        "Figure 5", ["p", "tune(p)", "sqrt(2p)"], rows,
        "paper shape: the steps straddle sqrt(2p) over six decades",
    )


def fig07(scale: float = 1.0, jobs=None, cache=None, tracer=None,
          runner=None) -> FigureData:
    """Bode margins for reno-PIE / reno-PI2 / scal-PI."""
    rows = []
    for pp in (0.001, 0.01, 0.1, 0.3, 0.6, 1.0):
        rows.append(
            (
                pp,
                _gm(margins_reno_pie(pp, 0.1, PAPER_PIE_GAINS)),
                _gm(margins_reno_pi2(pp, 0.1, PAPER_PI2_GAINS)),
                _gm(margins_scal_pi(pp, 0.1, PAPER_SCAL_GAINS)),
            )
        )
    return FigureData(
        "Figure 7", ["p or p'", "GM pie [dB]", "GM pi2 [dB]", "GM scal [dB]"],
        rows, "paper shape: pi2/scal flat and positive; >10 dB only at p'>0.6",
    )


def _stage_warmup(stage: float) -> float:
    """Settle time skipped at the head of each stage before averaging.

    The paper-scale stages (≥ 8 s) skip a fixed 1 s of transient; short
    CLI runs shrink the offset proportionally so the averaging window
    never empties (a fixed 1 s offset past the stage end fed
    ``np.mean`` an empty slice → NaN rows below ``scale = 0.125``).
    """
    return min(1.0, stage / 8.0)


def _require_min_stage(figure: str, stage: float, scale: float) -> None:
    """Reject stage lengths too short for per-stage statistics."""
    if stage < MIN_STAGE_SECONDS:
        min_scale = scale * MIN_STAGE_SECONDS / stage
        raise ConfigError(
            f"{figure}: stage length {stage:.3g}s (scale={scale:.3g}) is "
            f"below the {MIN_STAGE_SECONDS}s minimum for per-stage delay "
            f"statistics; use scale >= {min_scale:.3g}"
        )


def _stage_rows(results, stage, flows):
    warmup = _stage_warmup(stage)
    rows = []
    for name, r in results.items():
        for s in range(5):
            t0, t1 = s * stage + warmup, (s + 1) * stage
            qd = r.queue_delay.window(t0, t1)
            rows.append(
                (name, f"{s + 1} ({flows[s]} flows)",
                 float(np.mean(qd)) * 1e3, float(np.max(qd)) * 1e3)
            )
    return rows


def fig06(scale: float = 1.0, jobs=None, cache=None, tracer=None,
          runner=None) -> FigureData:
    """Un-tuned PI vs PI2 under varying intensity at 100 Mb/s, 10 ms."""
    runner = _ensure_runner("fig06", runner, jobs, cache, tracer)
    stage = 8.0 * scale
    _require_min_stage("fig06", stage, scale)
    results = {}
    for name, factory in (("pi", pi_factory()), ("pi2", pi2_factory())):
        exp = varying_intensity(factory, capacity_bps=100 * MBPS, rtt=0.010,
                                stage=stage)
        exp.sample_period = 0.1
        results[name] = runner.run_cell(name, exp)
    return FigureData(
        "Figure 6", ["aqm", "stage", "q mean [ms]", "q peak [ms]"],
        _stage_rows(results, stage, [10, 30, 50, 30, 10]),
        "paper shape: un-tuned PI oscillates at low load; PI2 holds 20 ms",
    )


def fig11(scale: float = 1.0, jobs=None, cache=None, tracer=None,
          runner=None) -> FigureData:
    """Queue delay and throughput under three traffic loads."""
    runner = _ensure_runner("fig11", runner, jobs, cache, tracer)
    duration = 30.0 * scale
    rows = []
    scenarios = {
        "5 TCP": light_tcp, "50 TCP": heavy_tcp, "5 TCP + 2 UDP": tcp_plus_udp,
    }
    for label, scenario in scenarios.items():
        for name, factory in (("pie", pie_factory()), ("pi2", pi2_factory())):
            r = runner.run_cell(
                f"{label}/{name}", scenario(factory, duration=duration)
            )
            soj = r.sojourn_samples()
            rows.append(
                (label, name, float(np.mean(soj)) * 1e3,
                 float(np.percentile(soj, 99)) * 1e3,
                 r.mean_utilization() * 100)
            )
    return FigureData(
        "Figure 11", ["scenario", "aqm", "q mean [ms]", "q p99 [ms]", "util [%]"],
        rows, "paper shape: both hold ~20 ms at full utilization",
    )


def fig12(scale: float = 1.0, jobs=None, cache=None, tracer=None,
          runner=None) -> FigureData:
    """Queue delay through capacity steps 100:20:100 Mb/s."""
    runner = _ensure_runner("fig12", runner, jobs, cache, tracer)
    stage = 15.0 * scale
    # The transient windows around each capacity step settle for 5 s at
    # paper scale (stage = 15 s); shrink them with the stage so short
    # runs keep non-empty windows (stage/3 == 5 s exactly at scale 1).
    settle = min(5.0, stage / 3.0)
    rows = []
    for name, factory in (("pie", pie_factory()), ("pi2", pi2_factory())):
        exp = varying_capacity(factory, stage=stage)
        exp.sample_period = 0.1
        r = runner.run_cell(name, exp)
        rows.append(
            (name,
             r.queue_delay.max(stage, stage + settle) * 1e3,
             r.queue_delay.mean(stage + settle, 2 * stage) * 1e3,
             r.queue_delay.max(2 * stage, 2 * stage + settle) * 1e3)
        )
    return FigureData(
        "Figure 12", ["aqm", "peak@drop [ms]", "mean@20M [ms]", "peak@rise [ms]"],
        rows, "paper: 510 ms (PIE) vs 250 ms (PI2) at the drop",
    )


def fig13(scale: float = 1.0, jobs=None, cache=None, tracer=None,
          runner=None) -> FigureData:
    """Varying intensity at 10 Mb/s, 100 ms RTT: PIE vs PI2."""
    runner = _ensure_runner("fig13", runner, jobs, cache, tracer)
    stage = 12.0 * scale
    _require_min_stage("fig13", stage, scale)
    results = {}
    for name, factory in (("pie", pie_factory()), ("pi2", pi2_factory())):
        exp = varying_intensity(factory, capacity_bps=10 * MBPS, rtt=0.100,
                                stage=stage)
        exp.sample_period = 0.1
        results[name] = runner.run_cell(name, exp)
    return FigureData(
        "Figure 13", ["aqm", "stage", "q mean [ms]", "q peak [ms]"],
        _stage_rows(results, stage, [10, 30, 50, 30, 10]),
        "paper shape: PI2 reduces overshoot at load changes",
    )


def fig19(scale: float = 1.0, jobs=None, cache=None, tracer=None,
          runner=None) -> FigureData:
    """Rate balance across flow-count mixes at 40 Mb/s, 10 ms."""
    runner = _ensure_runner("fig19", runner, jobs, cache, tracer)
    duration = 25.0 * scale
    mixes = ((1, 1), (1, 9), (5, 5), (9, 1))
    rows = []
    for name, factory in (("pie", pie_factory()), ("pi2", coupled_factory())):
        sweeps = run_mix_sweep(factory, mixes=mixes, duration=duration,
                               warmup=min(10.0, duration / 2),
                               **runner.sweep_kwargs())
        runner.absorb(sweeps)
        for (n_a, n_b), result in sweeps.items():
            rows.append(
                (name, f"A{n_a}-B{n_b}", result.balance("dctcp", "cubic"))
            )
    return FigureData(
        "Figure 19", ["aqm", "mix (A=dctcp B=cubic)", "DCTCP/Cubic ratio"],
        rows, "paper shape: PIE ~10 for every mix, PI2 ≈ 1",
    )


def fig14(scale: float = 1.0, jobs=None, cache=None, tracer=None,
          runner=None) -> FigureData:
    """Queue-delay distribution summary at 5 ms and 20 ms targets."""
    from repro.harness.experiment import Experiment, FlowGroup

    runner = _ensure_runner("fig14", runner, jobs, cache, tracer)
    duration = 25.0 * scale
    rows = []
    for target in (0.005, 0.020):
        for name, make in (
            ("pie", lambda t: pie_factory(target_delay=t)),
            ("pi2", lambda t: pi2_factory(target_delay=t)),
        ):
            r = runner.run_cell(
                f"{name}@{target * 1e3:.0f}ms",
                Experiment(
                    capacity_bps=10 * MBPS,
                    duration=duration,
                    warmup=min(10.0, duration / 3),
                    aqm_factory=make(target),
                    flows=[FlowGroup(cc="reno", count=20, rtt=0.100)],
                ),
            )
            soj = r.sojourn_samples()
            rows.append(
                (f"{target * 1e3:.0f} ms", name,
                 float(np.percentile(soj, 50)) * 1e3,
                 float(np.percentile(soj, 90)) * 1e3,
                 float(np.percentile(soj, 99)) * 1e3)
            )
    return FigureData(
        "Figure 14", ["target", "aqm", "p50 [ms]", "p90 [ms]", "p99 [ms]"],
        rows, "paper shape: PI2's CDF ≈ PIE's at both targets (20-TCP panel)",
    )


def fig15(scale: float = 1.0, jobs=None, cache=None, tracer=None,
          runner=None) -> FigureData:
    """Rate balance on a reduced 3×3 coexistence grid.

    The full 5×5 grid with per-cell convergence budgeting lives in the
    benchmark suite; this CLI-friendly version covers the corner points.
    """
    from repro.harness.sweep import run_coexistence_grid

    runner = _ensure_runner("fig15", runner, jobs, cache, tracer)
    duration = 20.0 * scale
    rows = []
    for name, factory in (("pie", pie_factory()), ("pi2", coupled_factory())):
        cells = run_coexistence_grid(
            factory, links_mbps=(4, 40), rtts_ms=(10, 50),
            duration=duration, warmup=min(8.0, duration / 2),
            **runner.sweep_kwargs(),
        )
        runner.absorb(cells)
        for cell in cells:
            rows.append(
                (name, cell.link_mbps, cell.rtt_ms,
                 cell.balance("cubic", "dctcp"))
            )
    return FigureData(
        "Figure 15 (reduced grid)",
        ["aqm", "link [Mb/s]", "RTT [ms]", "Cubic/DCTCP ratio"],
        rows, "paper shape: ≈0.1 under PIE (starvation), ≈1 under PI2",
    )


#: Registry of the CLI-accessible generators.
FIGURES: Dict[str, Callable[..., FigureData]] = {
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig19": fig19,
}


def _resolve_journal(journal, name: str, compact_every: Optional[int]):
    """Resolve the ``journal`` argument into (ResultJournal|None, owned).

    A path names a *directory* holding one journal per figure
    (``<dir>/<name>.journal``) so a fleet can share one ``--journal``
    flag across figures; a ready-made
    :class:`~repro.harness.journal.ResultJournal` is used as-is (and not
    closed — the caller owns it).
    """
    from repro.harness.journal import ResultJournal

    if journal is None:
        return None, False
    if isinstance(journal, ResultJournal):
        return journal, False
    from pathlib import Path

    root = Path(journal)
    root.mkdir(parents=True, exist_ok=True)
    return (
        ResultJournal(root / f"{name}.journal", compact_every=compact_every),
        True,
    )


def generate_figure(
    name: str, scale: float = 1.0, jobs=None, cache=None, tracer=None,
    journal=None, resume: bool = False, supervisor=None,
    compact_every: Optional[int] = None,
) -> FigureData:
    """Generate one figure's data by registry name.

    ``jobs`` parallelises grid/mix-based figures over a process pool;
    ``cache`` (a :class:`~repro.harness.cache.ResultCache`) reuses
    already-simulated runs across invocations.  ``tracer`` (a
    :class:`~repro.obs.trace.Tracer`) observes the simulation-backed
    figures — control-law events, engine epochs, harness spans including
    per-cell ``figure_cell`` events carrying journal hit/miss — and is
    guaranteed not to change any number in the returned rows.

    ``journal`` (a directory path or a
    :class:`~repro.harness.journal.ResultJournal`) makes every completed
    simulation cell durable as it finishes (one journal per figure name
    under a directory); ``resume=True`` replays journaled cells instead
    of re-simulating, so a figure run killed mid-sweep and resumed
    returns rows bit-identical to an uninterrupted run.
    ``supervisor`` (a :class:`~repro.harness.supervisor.SupervisorConfig`)
    runs each cell in a watchdogged worker process with per-task
    timeouts and heartbeat monitoring.  ``compact_every=N`` rewrites the
    journal (latest record per key) after every N appends.  The returned
    data carries a :class:`FigureRunReport` as ``report``.

    Figures that are pure analysis (fig04/05/07) ignore all of these.
    """
    if name not in FIGURES:
        raise ValueError(f"unknown figure {name!r}; choose from {sorted(FIGURES)}")
    if scale <= 0:
        raise ValueError(f"scale must be positive (got {scale})")
    journal_obj, owned = _resolve_journal(journal, name, compact_every)
    runner = FigureRunner(
        name, jobs=jobs, cache=cache, tracer=tracer,
        journal=journal_obj, resume=resume, supervisor=supervisor,
    )
    try:
        data = FIGURES[name](scale=scale, runner=runner)
        runner.finish()
    finally:
        if owned and journal_obj is not None:
            journal_obj.close()
    data.report = runner.report
    return data
