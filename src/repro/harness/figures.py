"""Programmatic figure-data generators.

Each function regenerates the *data* behind one of the paper's figures
and returns a :class:`FigureData` (headers + rows + a note about the
paper's expected shape), for the CLI's ``figure`` subcommand and for
notebook/scripting use.  The pytest benchmarks in ``benchmarks/`` are the
*assertion* layer for the same experiments; these generators favour
moderate default durations so a figure is obtainable in seconds-to-a-
minute from the command line, with a ``scale`` knob to trade time for
smoothness.

Example
-------
>>> from repro.harness.figures import FIGURES
>>> data = FIGURES["fig05"]()
>>> data.headers
['p', 'tune(p)', 'sqrt(2p)']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.analysis.bode import margins_reno_pi, margins_reno_pi2, margins_reno_pie, margins_scal_pi
from repro.analysis.fluid import PAPER_PI2_GAINS, PAPER_PIE_GAINS, PAPER_SCAL_GAINS
from repro.aqm.tune_table import tune_table_rows
from repro.harness.experiment import run_experiment
from repro.harness.factories import coupled_factory, pi2_factory, pi_factory, pie_factory
from repro.harness.scenarios import (
    MBPS,
    heavy_tcp,
    light_tcp,
    tcp_plus_udp,
    varying_capacity,
    varying_intensity,
)
from repro.harness.sweep import format_table, run_mix_sweep

__all__ = ["FigureData", "FIGURES", "generate_figure"]


@dataclass
class FigureData:
    """Rows regenerating one figure, plus the paper's expected shape."""

    figure: str
    headers: List[str]
    rows: List[Tuple]
    note: str = ""

    def table(self) -> str:
        """Render headers + rows as an aligned text table."""
        title = f"{self.figure}" + (f"\n{self.note}" if self.note else "")
        return format_table(self.headers, self.rows, title=title)

    def to_csv(self, path) -> None:
        """Write the figure's rows to ``path`` as CSV."""
        import csv
        from pathlib import Path

        with Path(path).open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.headers)
            writer.writerows(self.rows)


def _gm(m):
    return float("nan") if m.gain_margin_db is None else m.gain_margin_db


def _run_one(exp, cache=None, tracer=None):
    """Run a single figure experiment, optionally through the result cache.

    With a cache the run is routed through the sweep executor so the
    figure's cells are stored/reused exactly like grid cells (and the
    returned object is a frozen result — same metric API).  ``tracer``
    observes the run (AQM/engine events plus harness spans) without
    changing its result.
    """
    if cache is None:
        return run_experiment(exp, tracer=tracer)
    from repro.harness.parallel import SweepTask, execute_tasks

    (result, _failure), = execute_tasks(
        [SweepTask("figure run", exp)], jobs=1, cache=cache, tracer=tracer
    )
    return result


def fig04(scale: float = 1.0, jobs=None, cache=None, tracer=None) -> FigureData:
    """Bode gain margins for PI on Reno: auto vs fixed tunes."""
    rows = []
    for p in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 0.5, 1.0):
        rows.append(
            (
                p,
                _gm(margins_reno_pie(p, 0.1, PAPER_PIE_GAINS)),
                _gm(margins_reno_pi(p, 0.1, PAPER_PIE_GAINS, tune_factor=1.0)),
                _gm(margins_reno_pi(p, 0.1, PAPER_PIE_GAINS, tune_factor=1 / 8)),
            )
        )
    return FigureData(
        "Figure 4", ["p", "GM auto [dB]", "GM tune=1 [dB]", "GM tune=1/8 [dB]"],
        rows, "paper shape: fixed-gain diagonal goes negative at low p",
    )


def fig05(scale: float = 1.0, jobs=None, cache=None, tracer=None) -> FigureData:
    """PIE's stepped tune factor vs the analytic √(2p)."""
    rows = [(p, t, s) for p, t, s in tune_table_rows(points_per_decade=2)]
    return FigureData(
        "Figure 5", ["p", "tune(p)", "sqrt(2p)"], rows,
        "paper shape: the steps straddle sqrt(2p) over six decades",
    )


def fig07(scale: float = 1.0, jobs=None, cache=None, tracer=None) -> FigureData:
    """Bode margins for reno-PIE / reno-PI2 / scal-PI."""
    rows = []
    for pp in (0.001, 0.01, 0.1, 0.3, 0.6, 1.0):
        rows.append(
            (
                pp,
                _gm(margins_reno_pie(pp, 0.1, PAPER_PIE_GAINS)),
                _gm(margins_reno_pi2(pp, 0.1, PAPER_PI2_GAINS)),
                _gm(margins_scal_pi(pp, 0.1, PAPER_SCAL_GAINS)),
            )
        )
    return FigureData(
        "Figure 7", ["p or p'", "GM pie [dB]", "GM pi2 [dB]", "GM scal [dB]"],
        rows, "paper shape: pi2/scal flat and positive; >10 dB only at p'>0.6",
    )


def _stage_rows(results, stage, flows):
    rows = []
    for name, r in results.items():
        for s in range(5):
            t0, t1 = s * stage + 1.0, (s + 1) * stage
            qd = r.queue_delay.window(t0, t1)
            rows.append(
                (name, f"{s + 1} ({flows[s]} flows)",
                 float(np.mean(qd)) * 1e3, float(np.max(qd)) * 1e3)
            )
    return rows


def fig06(scale: float = 1.0, jobs=None, cache=None, tracer=None) -> FigureData:
    """Un-tuned PI vs PI2 under varying intensity at 100 Mb/s, 10 ms."""
    stage = 8.0 * scale
    results = {}
    for name, factory in (("pi", pi_factory()), ("pi2", pi2_factory())):
        exp = varying_intensity(factory, capacity_bps=100 * MBPS, rtt=0.010,
                                stage=stage)
        exp.sample_period = 0.1
        results[name] = _run_one(exp, cache, tracer)
    return FigureData(
        "Figure 6", ["aqm", "stage", "q mean [ms]", "q peak [ms]"],
        _stage_rows(results, stage, [10, 30, 50, 30, 10]),
        "paper shape: un-tuned PI oscillates at low load; PI2 holds 20 ms",
    )


def fig11(scale: float = 1.0, jobs=None, cache=None, tracer=None) -> FigureData:
    """Queue delay and throughput under three traffic loads."""
    duration = 30.0 * scale
    rows = []
    scenarios = {
        "5 TCP": light_tcp, "50 TCP": heavy_tcp, "5 TCP + 2 UDP": tcp_plus_udp,
    }
    for label, scenario in scenarios.items():
        for name, factory in (("pie", pie_factory()), ("pi2", pi2_factory())):
            r = _run_one(scenario(factory, duration=duration), cache, tracer)
            soj = r.sojourn_samples()
            rows.append(
                (label, name, float(np.mean(soj)) * 1e3,
                 float(np.percentile(soj, 99)) * 1e3,
                 r.mean_utilization() * 100)
            )
    return FigureData(
        "Figure 11", ["scenario", "aqm", "q mean [ms]", "q p99 [ms]", "util [%]"],
        rows, "paper shape: both hold ~20 ms at full utilization",
    )


def fig12(scale: float = 1.0, jobs=None, cache=None, tracer=None) -> FigureData:
    """Queue delay through capacity steps 100:20:100 Mb/s."""
    stage = 15.0 * scale
    rows = []
    for name, factory in (("pie", pie_factory()), ("pi2", pi2_factory())):
        exp = varying_capacity(factory, stage=stage)
        exp.sample_period = 0.1
        r = _run_one(exp, cache, tracer)
        rows.append(
            (name,
             r.queue_delay.max(stage, stage + 5.0) * 1e3,
             r.queue_delay.mean(stage + 5.0, 2 * stage) * 1e3,
             r.queue_delay.max(2 * stage, 2 * stage + 5.0) * 1e3)
        )
    return FigureData(
        "Figure 12", ["aqm", "peak@drop [ms]", "mean@20M [ms]", "peak@rise [ms]"],
        rows, "paper: 510 ms (PIE) vs 250 ms (PI2) at the drop",
    )


def fig13(scale: float = 1.0, jobs=None, cache=None, tracer=None) -> FigureData:
    """Varying intensity at 10 Mb/s, 100 ms RTT: PIE vs PI2."""
    stage = 12.0 * scale
    results = {}
    for name, factory in (("pie", pie_factory()), ("pi2", pi2_factory())):
        exp = varying_intensity(factory, capacity_bps=10 * MBPS, rtt=0.100,
                                stage=stage)
        exp.sample_period = 0.1
        results[name] = _run_one(exp, cache, tracer)
    return FigureData(
        "Figure 13", ["aqm", "stage", "q mean [ms]", "q peak [ms]"],
        _stage_rows(results, stage, [10, 30, 50, 30, 10]),
        "paper shape: PI2 reduces overshoot at load changes",
    )


def fig19(scale: float = 1.0, jobs=None, cache=None, tracer=None) -> FigureData:
    """Rate balance across flow-count mixes at 40 Mb/s, 10 ms."""
    duration = 25.0 * scale
    mixes = ((1, 1), (1, 9), (5, 5), (9, 1))
    rows = []
    for name, factory in (("pie", pie_factory()), ("pi2", coupled_factory())):
        sweeps = run_mix_sweep(factory, mixes=mixes, duration=duration,
                               warmup=min(10.0, duration / 2),
                               jobs=jobs, cache=cache, tracer=tracer)
        for (n_a, n_b), result in sweeps.items():
            rows.append(
                (name, f"A{n_a}-B{n_b}", result.balance("dctcp", "cubic"))
            )
    return FigureData(
        "Figure 19", ["aqm", "mix (A=dctcp B=cubic)", "DCTCP/Cubic ratio"],
        rows, "paper shape: PIE ~10 for every mix, PI2 ≈ 1",
    )


def fig14(scale: float = 1.0, jobs=None, cache=None, tracer=None) -> FigureData:
    """Queue-delay distribution summary at 5 ms and 20 ms targets."""
    from repro.harness.experiment import Experiment, FlowGroup

    duration = 25.0 * scale
    rows = []
    for target in (0.005, 0.020):
        for name, make in (
            ("pie", lambda t: pie_factory(target_delay=t)),
            ("pi2", lambda t: pi2_factory(target_delay=t)),
        ):
            r = _run_one(
                Experiment(
                    capacity_bps=10 * MBPS,
                    duration=duration,
                    warmup=min(10.0, duration / 3),
                    aqm_factory=make(target),
                    flows=[FlowGroup(cc="reno", count=20, rtt=0.100)],
                ),
                cache,
                tracer,
            )
            soj = r.sojourn_samples()
            rows.append(
                (f"{target * 1e3:.0f} ms", name,
                 float(np.percentile(soj, 50)) * 1e3,
                 float(np.percentile(soj, 90)) * 1e3,
                 float(np.percentile(soj, 99)) * 1e3)
            )
    return FigureData(
        "Figure 14", ["target", "aqm", "p50 [ms]", "p90 [ms]", "p99 [ms]"],
        rows, "paper shape: PI2's CDF ≈ PIE's at both targets (20-TCP panel)",
    )


def fig15(scale: float = 1.0, jobs=None, cache=None, tracer=None) -> FigureData:
    """Rate balance on a reduced 3×3 coexistence grid.

    The full 5×5 grid with per-cell convergence budgeting lives in the
    benchmark suite; this CLI-friendly version covers the corner points.
    """
    from repro.harness.sweep import run_coexistence_grid

    duration = 20.0 * scale
    rows = []
    for name, factory in (("pie", pie_factory()), ("pi2", coupled_factory())):
        cells = run_coexistence_grid(
            factory, links_mbps=(4, 40), rtts_ms=(10, 50),
            duration=duration, warmup=min(8.0, duration / 2),
            jobs=jobs, cache=cache, tracer=tracer,
        )
        for cell in cells:
            rows.append(
                (name, cell.link_mbps, cell.rtt_ms,
                 cell.balance("cubic", "dctcp"))
            )
    return FigureData(
        "Figure 15 (reduced grid)",
        ["aqm", "link [Mb/s]", "RTT [ms]", "Cubic/DCTCP ratio"],
        rows, "paper shape: ≈0.1 under PIE (starvation), ≈1 under PI2",
    )


#: Registry of the CLI-accessible generators.
FIGURES: Dict[str, Callable[..., FigureData]] = {
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig19": fig19,
}


def generate_figure(
    name: str, scale: float = 1.0, jobs=None, cache=None, tracer=None
) -> FigureData:
    """Generate one figure's data by registry name.

    ``jobs`` parallelises grid/mix-based figures over a process pool;
    ``cache`` (a :class:`~repro.harness.cache.ResultCache`) reuses
    already-simulated runs across invocations.  ``tracer`` (a
    :class:`~repro.obs.trace.Tracer`) observes the simulation-backed
    figures — control-law events, engine epochs, harness spans — and is
    guaranteed not to change any number in the returned rows.  Figures
    that are pure analysis (fig04/05/07) ignore all three.
    """
    if name not in FIGURES:
        raise ValueError(f"unknown figure {name!r}; choose from {sorted(FIGURES)}")
    if scale <= 0:
        raise ValueError(f"scale must be positive (got {scale})")
    return FIGURES[name](scale=scale, jobs=jobs, cache=cache, tracer=tracer)
