"""Process-pool execution of experiment sweeps.

The paper's figures are grids — 25 link×RTT cells per AQM (Figures
15–18), 14 flow mixes (Figures 19–20), five seeds per repetition — and
every cell is an independent seeded simulation.  This module fans those
cells out over a :mod:`multiprocessing` pool while keeping the one
property the whole repository is built on: **bit-exact determinism**.

How determinism is preserved
----------------------------
* Each cell's :class:`~repro.harness.experiment.Experiment` (including
  its seed) is constructed *in the parent*, exactly as the serial loop
  would, and shipped whole to a worker — a worker never derives
  configuration.
* Workers return frozen results (:mod:`repro.harness.frozen`); the
  parent reassembles them **in submission order**, so the outcome list is
  indistinguishable from the serial loop's.
* A simulation's randomness comes only from its seeded streams, never
  from which process or core ran it.

The unit of work is a :class:`SweepTask`; :func:`execute_tasks` is the
single entry point the grid/mix/repeat runners share.  It also folds in
the optional on-disk result cache (:mod:`repro.harness.cache`): hits skip
the pool entirely, misses are simulated and stored.

Experiments built from the named factories in
:mod:`repro.harness.factories` are picklable; hand-rolled lambda
factories are not, and are rejected with a pointer at the fix rather than
a bare :class:`pickle.PicklingError` from deep inside the pool.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigError, ParallelExecutionError
from repro.harness.cache import (
    ResultCache,
    SharedResultCache,
    experiment_cache_key,
)
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.frozen import FrozenResult, freeze_result
from repro.harness.resilience import (
    Attempt,
    RunFailure,
    current_worker,
    run_with_retries,
)

__all__ = [
    "SweepTask",
    "TaskResult",
    "resolve_jobs",
    "execute_tasks",
]

#: What execute_tasks yields per task: exactly one side is non-None.
TaskResult = Tuple[Optional[FrozenResult], Optional[RunFailure]]


@dataclass(frozen=True)
class SweepTask:
    """One independent cell of a sweep: a label for reports + its config."""

    label: str
    experiment: Experiment


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: None/0 → one worker per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigError(f"jobs must be positive or 0/None for auto (got {jobs})")
    return jobs


def _start_method() -> str:
    """Prefer fork (fast, inherits sys.path — test-defined factories
    pickle by reference); fall back to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def _run_payload(payload, tracer=None) -> TaskResult:
    """Worker body: simulate one cell, freeze the outcome.

    Runs in a pool process (but is equally callable in-process).  Always
    returns instead of raising — exceptions would otherwise tear down the
    whole pool map and lose every sibling cell's work; the parent decides
    whether a failure is fatal based on ``on_error``.

    When the parent executes through a :class:`SharedResultCache` it
    ships the cache root as the payload's fifth element; the worker then
    routes the simulation through the cache's per-key single-flight lock,
    so identical cells running concurrently — in this pool or in a
    *different process's* pool over the same cache — are computed once
    and shared.  The worker publishes the entry itself (under the lock),
    so the parent skips its own ``put`` for shared caches.
    """
    experiment, label, on_error, max_retries, shared_root = payload
    if shared_root is not None:
        key = experiment_cache_key(experiment)
        if key is not None:
            cache = SharedResultCache(shared_root)
            outcome: dict = {}

            def compute() -> Optional[FrozenResult]:
                result, failure = _simulate_payload(
                    experiment, label, on_error, max_retries, tracer
                )
                outcome["failure"] = failure
                return result

            result = cache.fetch_or_compute(key, compute)
            return result, outcome.get("failure")
    return _simulate_payload(experiment, label, on_error, max_retries, tracer)


def _simulate_payload(
    experiment, label, on_error, max_retries, tracer=None
) -> TaskResult:
    """The uncached worker body shared by both payload routes.

    ``tracer`` only arrives on the in-process (serial) route — a JSONL
    sink holds an open file handle and cannot cross the pool boundary —
    and only on the fast path (retry-captured runs are diagnostics, not
    trace subjects).
    """
    if on_error == "capture":
        result, failure = run_with_retries(
            experiment, label=label, max_retries=max_retries
        )
        return (freeze_result(result) if result is not None else None, failure)
    try:
        return freeze_result(run_experiment(experiment, tracer=tracer)), None
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        worker = current_worker()
        return None, RunFailure(
            label=label,
            seeds_tried=(experiment.seed,),
            error_type=type(exc).__name__,
            error=str(exc),
            sim_time=getattr(exc, "sim_time", None),
            component=getattr(exc, "component", None),
            attempts=(
                Attempt(
                    seed=experiment.seed,
                    kind="exception",
                    error_type=type(exc).__name__,
                    error=str(exc),
                    worker=worker,
                ),
            ),
            worker=worker,
        )


def _check_picklable(tasks: Sequence[SweepTask]) -> None:
    for task in tasks:
        try:
            pickle.dumps(task.experiment)
        except Exception as exc:
            raise ConfigError(
                f"experiment for {task.label!r} cannot be pickled for parallel "
                f"execution ({type(exc).__name__}: {exc}); use the named AQM "
                f"factories from repro.harness.factories (picklable) or run "
                f"with jobs=1"
            ) from exc


def _defer_in_flight(
    pending: List[int],
    keys: List[Optional[str]],
    cache: SharedResultCache,
    emit,
) -> List[int]:
    """Reorder submission so in-flight cells run last (shared cache only).

    Another process over the same :class:`SharedResultCache` may already
    be computing some of these cells (its per-key lock is held).
    Submitting those first would make our workers sleep-poll on the
    remote winner while unclaimed cells wait behind them; submitting
    them *last* lets the fleet compute each cell once with every worker
    busy, and by the time the deferred cells run the winner has usually
    published — they resolve as cache hits inside the worker.  Only the
    submission order changes: results are reassembled by task index, so
    the returned list (and every digest built from it) is bit-identical.
    """
    in_flight = [
        i for i in pending
        if keys[i] is not None and cache.in_flight(keys[i])
    ]
    if not in_flight:
        return pending
    deferred = set(in_flight)
    if emit is not None:
        emit("harness", "cache_deferred", 0.0, {"tasks": len(in_flight)})
    return [i for i in pending if i not in deferred] + in_flight


def execute_tasks(
    tasks: Sequence[SweepTask],
    *,
    jobs: Optional[int] = None,
    on_error: str = "raise",
    max_retries: int = 1,
    cache: Optional[ResultCache] = None,
    tracer: Optional[object] = None,
) -> List[TaskResult]:
    """Run every task, in parallel when asked, through the cache when given.

    Returns one ``(frozen_result, failure)`` pair per task **in task
    order** regardless of completion order.  With ``on_error="raise"``
    the first failing task (again in task order, matching the serial
    loop's behaviour) raises :class:`~repro.errors.ParallelExecutionError`
    carrying the worker-side context; with ``"capture"`` failures come
    back as :class:`~repro.harness.resilience.RunFailure` entries.

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`) receives harness
    lifecycle spans in the parent — ``cache_hit`` per hit, ``task_start``
    / ``task_done`` per executed task (with per-task ``seconds`` on the
    in-process route; a pool map reports one aggregate ``pool_map``
    span instead, since per-task wall time lives in the workers).  On
    the in-process route the tracer is also threaded into
    :func:`~repro.harness.experiment.run_experiment` so AQM/engine
    events are captured; worker processes run untraced (a JSONL sink
    cannot cross the pool boundary).  Results are bit-exact either way.
    """
    if on_error not in ("raise", "capture"):
        raise ValueError(f"on_error must be 'raise' or 'capture' (got {on_error!r})")
    n_jobs = resolve_jobs(jobs)
    out: List[Optional[TaskResult]] = [None] * len(tasks)
    keys: List[Optional[str]] = [None] * len(tasks)
    emit = tracer.emit if tracer is not None else None

    pending: List[int] = []
    for index, task in enumerate(tasks):
        if cache is not None:
            key = cache.key_for(task.experiment)
            keys[index] = key
            if key is not None:
                hit = cache.get(key)
                if hit is not None:
                    out[index] = (hit, None)
                    if emit is not None:
                        emit("harness", "cache_hit", 0.0, {"label": task.label})
                    continue
        pending.append(index)

    if pending:
        # Shared caches push the store (and the single-flight lock) down
        # into the workers; plain caches keep the parent-side put.
        shared_root = (
            str(cache.root) if isinstance(cache, SharedResultCache) else None
        )
        if shared_root is not None and len(pending) > 1:
            pending = _defer_in_flight(pending, keys, cache, emit)
        payloads = [
            (tasks[i].experiment, tasks[i].label, on_error, max_retries, shared_root)
            for i in pending
        ]
        if n_jobs > 1 and len(pending) > 1:
            _check_picklable([tasks[i] for i in pending])
            if emit is not None:
                for i in pending:
                    emit("harness", "task_start", 0.0,
                         {"label": tasks[i].label, "backend": "pool"})
            started = time.monotonic()
            ctx = multiprocessing.get_context(_start_method())
            with ctx.Pool(processes=min(n_jobs, len(pending))) as pool:
                fresh = pool.map(_run_payload, payloads, chunksize=1)
            if emit is not None:
                emit("harness", "pool_map", 0.0, {
                    "tasks": len(pending),
                    "jobs": min(n_jobs, len(pending)),
                    "seconds": time.monotonic() - started,
                })
                for i, (result, _failure) in zip(pending, fresh):
                    emit("harness", "task_done", 0.0,
                         {"label": tasks[i].label, "ok": result is not None})
        else:
            fresh = []
            for i, payload in zip(pending, payloads):
                if emit is not None:
                    emit("harness", "task_start", 0.0,
                         {"label": tasks[i].label, "backend": "serial"})
                started = time.monotonic()
                task_result = _run_payload(payload, tracer)
                fresh.append(task_result)
                if emit is not None:
                    emit("harness", "task_done", 0.0, {
                        "label": tasks[i].label,
                        "ok": task_result[0] is not None,
                        "seconds": time.monotonic() - started,
                    })
        for index, task_result in zip(pending, fresh):
            out[index] = task_result
            result, _failure = task_result
            if (
                shared_root is None
                and cache is not None
                and result is not None
                and keys[index] is not None
            ):
                cache.put(keys[index], result)

    if on_error == "raise":
        for task_result in out:
            failure = task_result[1]
            if failure is not None:
                raise ParallelExecutionError(
                    f"sweep cell failed: {failure}",
                    label=failure.label,
                    error_type=failure.error_type,
                    sim_time=failure.sim_time,
                    component=failure.component,
                )
    # Every slot was filled above (cache hit, fresh run, or failure record).
    return out  # type: ignore[return-value]
