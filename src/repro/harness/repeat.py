"""Multi-seed repetition with confidence intervals.

A single seeded run is reproducible but still one sample of a stochastic
system.  :func:`repeat_experiment` re-runs an experiment across seeds and
aggregates any scalar metric into mean ± a t-distribution confidence
interval, so claims like "PI2's queue delay equals PIE's" can be made
with error bars instead of single numbers.

The t quantiles are tabulated for the small repetition counts that make
sense here (2–30 runs), avoiding a scipy dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence

from repro.harness.experiment import Experiment, ExperimentResult, run_experiment
from repro.harness.resilience import RunFailure, run_with_retries

__all__ = ["MetricEstimate", "RepeatOutcome", "repeat_experiment", "compare_metric"]

#: Two-sided 95 % Student-t quantiles by degrees of freedom.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 25: 2.060, 29: 2.045,
}


def _t95(dof: int) -> float:
    if dof <= 0:
        return math.inf
    keys = sorted(_T95)
    for k in keys:
        if dof <= k:
            return _T95[k]
    return 1.96  # normal limit


@dataclass(frozen=True)
class MetricEstimate:
    """Mean, 95 % confidence half-width, and the raw per-seed samples."""

    mean: float
    ci95: float
    samples: tuple

    @property
    def low(self) -> float:
        """Lower edge of the 95 % confidence interval."""
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        """Upper edge of the 95 % confidence interval."""
        return self.mean + self.ci95

    def overlaps(self, other: "MetricEstimate") -> bool:
        """Whether the two 95 % intervals overlap (a quick equality read)."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.ci95:.2g} (n={len(self.samples)})"


def _estimate(samples: Sequence[float]) -> MetricEstimate:
    n = len(samples)
    mean = sum(samples) / n
    if n < 2:
        return MetricEstimate(mean, math.inf, tuple(samples))
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    half = _t95(n - 1) * math.sqrt(var / n)
    return MetricEstimate(mean, half, tuple(samples))


class RepeatOutcome(Dict[str, MetricEstimate]):
    """Metric estimates plus the failure report of any seeds that died.

    A plain ``{metric: estimate}`` dict (existing callers keep working)
    with :attr:`failures` listing one
    :class:`~repro.harness.resilience.RunFailure` per seed that failed
    every retry; those seeds contribute no samples.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.failures: List[RunFailure] = []
        self.recovery = None

    @property
    def complete(self) -> bool:
        """True when every seed produced a sample (no failures)."""
        return not self.failures


def repeat_experiment(
    experiment: Experiment,
    metrics: Dict[str, Callable[[ExperimentResult], float]],
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    on_error: str = "raise",
    max_retries: int = 1,
    jobs=None,
    cache=None,
    supervised: bool = False,
    supervisor=None,
    journal=None,
    resume: bool = False,
) -> RepeatOutcome:
    """Run the experiment once per seed; estimate each metric.

    ``metrics`` maps a name to an extractor over the result, e.g.
    ``{"delay": lambda r: r.sojourn_summary()["mean"]}``.

    ``on_error="capture"`` makes a failing seed retry on bumped seeds
    (``max_retries`` extra attempts) and, failing that, be recorded on
    the returned outcome's ``failures`` instead of killing the whole
    repetition; estimates are then built from the surviving seeds (the
    outcome may be empty if every seed failed).

    ``jobs`` runs the seeds concurrently in a process pool and ``cache``
    reuses already-simulated seeds from disk (see
    :func:`~repro.harness.sweep.run_coexistence_grid` for the shared
    semantics).  Metric extractors always run in the parent process, over
    the frozen results the workers return — so they may be arbitrary
    (unpicklable) callables, and per-seed numbers are identical to the
    serial path's.

    ``supervised``/``supervisor``/``journal``/``resume`` route the seeds
    through the watchdogged, journal-backed backend (see
    :func:`~repro.harness.sweep.run_coexistence_grid`); the outcome's
    ``recovery`` attribute then carries the
    :class:`~repro.harness.supervisor.SupervisorReport`.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    if not metrics:
        raise ValueError("at least one metric is required")
    if on_error not in ("raise", "capture"):
        raise ValueError(f"on_error must be 'raise' or 'capture' (got {on_error!r})")
    collected: Dict[str, List[float]] = {name: [] for name in metrics}
    outcome = RepeatOutcome()

    use_supervised = supervised or supervisor is not None \
        or journal is not None or resume
    if use_supervised or cache is not None or (jobs is not None and jobs != 1):
        from repro.harness.parallel import SweepTask, execute_tasks

        tasks = [
            SweepTask(f"seed {seed}", replace(experiment, seed=seed))
            for seed in seeds
        ]
        if use_supervised:
            from repro.harness.supervisor import run_supervised_tasks

            pairs, outcome.recovery = run_supervised_tasks(
                tasks, jobs=jobs, on_error=on_error, max_retries=max_retries,
                cache=cache, supervisor=supervisor, journal=journal,
                resume=resume,
            )
        else:
            pairs = execute_tasks(
                tasks, jobs=jobs, on_error=on_error,
                max_retries=max_retries, cache=cache,
            )
        for (result, failure) in pairs:
            if result is None:
                outcome.failures.append(failure)
                continue
            for name, extract in metrics.items():
                collected[name].append(float(extract(result)))
    else:
        for seed in seeds:
            if on_error == "raise":
                result = run_experiment(replace(experiment, seed=seed))
            else:
                result, failure = run_with_retries(
                    replace(experiment, seed=seed),
                    label=f"seed {seed}",
                    max_retries=max_retries,
                )
                if result is None:
                    outcome.failures.append(failure)
                    continue
            for name, extract in metrics.items():
                collected[name].append(float(extract(result)))
    outcome.update(
        {
            name: _estimate(samples)
            for name, samples in collected.items()
            if samples
        }
    )
    return outcome


def compare_metric(
    experiment_a: Experiment,
    experiment_b: Experiment,
    metric: Callable[[ExperimentResult], float],
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
) -> tuple:
    """Estimate one metric under two configurations over the same seeds.

    Returns ``(estimate_a, estimate_b)``; sharing seeds pairs the runs so
    non-AQM randomness cancels out of the comparison.
    """
    a = repeat_experiment(experiment_a, {"m": metric}, seeds)["m"]
    b = repeat_experiment(experiment_b, {"m": metric}, seeds)["m"]
    return a, b
