"""Resilient execution of experiments: capture, retry, report.

A 5×5 grid sweep that dies on cell 23 of 25 throws away twenty-two
finished simulations and tells you nothing about where it died.  This
module gives the sweep and repetition runners a different failure mode:
each run is executed through :func:`run_with_retries`, which

* catches the failure,
* retries with a deterministically bumped seed (transient stochastic
  failures — an unlucky divergence, a pathological event ordering — often
  clear on a different random stream; systematic bugs do not),
* and, if every attempt fails, returns a :class:`RunFailure` carrying the
  structured error context (virtual time, component, invariant) from
  :mod:`repro.errors` instead of raising.

Sweeps then return partial results plus a failure report
(:func:`format_failure_report`), so one poisoned cell costs one cell.

Every attempt — the original seed, each bumped retry, and (under the
supervised backend in :mod:`repro.harness.supervisor`) each process-level
recovery such as a timeout kill — is recorded as an :class:`Attempt` on
the failure, together with the identity of the worker that ran it, so
serial and supervised sweeps produce directly comparable reports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.harness.experiment import Experiment, ExperimentResult, run_experiment

__all__ = [
    "Attempt",
    "RunFailure",
    "RecoveryAction",
    "run_with_retries",
    "format_failure_report",
    "format_recovery_report",
    "RETRY_SEED_STRIDE",
]

#: Added to the seed for each retry attempt.  A large prime, so bumped
#: seeds never collide with the caller's own seed sequence (1, 2, 3, ...).
RETRY_SEED_STRIDE = 100_003


def current_worker() -> str:
    """Identity string of the process executing right now (``pid:<n>``)."""
    return f"pid:{os.getpid()}"


@dataclass(frozen=True)
class Attempt:
    """One execution attempt of one task: where it ran and how it ended.

    ``kind`` is ``"exception"`` (the simulation raised), ``"timeout"``
    (per-task wall-clock budget expired), ``"killed"`` (the worker
    process died — SIGKILL, OOM, segfault), ``"stalled"`` (heartbeats
    stopped while the process stayed alive) or ``"spawn"`` (the worker
    could not even be started).  ``backoff_s`` is the delay the
    supervisor waited before the *next* attempt (0 for immediate retry).
    """

    seed: int
    kind: str
    error_type: Optional[str] = None
    error: Optional[str] = None
    worker: Optional[str] = None
    backoff_s: float = 0.0

    def __str__(self) -> str:
        parts = [f"seed={self.seed}", self.kind]
        if self.error_type:
            parts.append(self.error_type)
        if self.worker:
            parts.append(f"worker={self.worker}")
        if self.backoff_s:
            parts.append(f"backoff={self.backoff_s:.2g}s")
        return " ".join(parts)


@dataclass(frozen=True)
class RecoveryAction:
    """One recovery decision the supervised backend took and survived.

    Unlike :class:`Attempt` (which lives on terminal failures), recovery
    actions record the *non-fatal* interventions — a killed worker
    retried in place, a seed bump that cleared a divergence, degradation
    to serial execution — so a completed sweep still tells the story of
    what it took to finish.
    """

    label: str
    action: str
    detail: str
    worker: Optional[str] = None

    def __str__(self) -> str:
        who = f" [{self.worker}]" if self.worker else ""
        return f"{self.label}: {self.action}{who} — {self.detail}"


@dataclass(frozen=True)
class RunFailure:
    """One experiment's terminal failure, after exhausting retries.

    ``seeds_tried`` lists every seed attempted (original plus bumps);
    ``sim_time``/``component``/``detail`` come from the structured
    :class:`~repro.errors.SimulationError` context when available.
    ``attempts`` is the full retry/backoff history (one
    :class:`Attempt` per try, in order) and ``worker`` identifies the
    process that ran the final attempt — both are filled by the serial
    retry runner and the supervised backend alike, so ``on_error =
    "capture"`` reports are comparable across execution modes.
    """

    label: str
    seeds_tried: Tuple[int, ...]
    error_type: str
    error: str
    sim_time: Optional[float] = None
    component: Optional[str] = None
    attempts: Tuple[Attempt, ...] = field(default=())
    worker: Optional[str] = None

    def __str__(self) -> str:
        where = f" at t={self.sim_time:.3f}s" if self.sim_time is not None else ""
        who = f" in {self.component}" if self.component else ""
        ran_on = f" [{self.worker}]" if self.worker else ""
        return (
            f"{self.label}: {self.error_type}{where}{who}{ran_on} "
            f"(seeds tried: {', '.join(map(str, self.seeds_tried))}) — {self.error}"
        )


def run_with_retries(
    experiment: Experiment,
    label: str,
    max_retries: int = 1,
) -> Tuple[Optional[ExperimentResult], Optional[RunFailure]]:
    """Run ``experiment``, retrying with bumped seeds on failure.

    Returns ``(result, None)`` on success and ``(None, failure)`` once
    the original seed plus ``max_retries`` bumped seeds have all failed.
    ``KeyboardInterrupt``/``SystemExit`` are never swallowed.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries cannot be negative (got {max_retries})")
    seeds = [experiment.seed + attempt * RETRY_SEED_STRIDE
             for attempt in range(max_retries + 1)]
    worker = current_worker()
    attempts: List[Attempt] = []
    last_error: Optional[BaseException] = None
    for seed in seeds:
        try:
            return run_experiment(replace(experiment, seed=seed)), None
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            last_error = exc
            attempts.append(
                Attempt(
                    seed=seed,
                    kind="exception",
                    error_type=type(exc).__name__,
                    error=str(exc),
                    worker=worker,
                )
            )
    sim_time = getattr(last_error, "sim_time", None)
    component = getattr(last_error, "component", None)
    if isinstance(last_error, SimulationError) and last_error.context.get("callback"):
        component = component or last_error.context["callback"]
    return None, RunFailure(
        label=label,
        seeds_tried=tuple(seeds),
        error_type=type(last_error).__name__,
        error=str(last_error),
        sim_time=sim_time,
        component=component,
        attempts=tuple(attempts),
        worker=worker,
    )


def format_failure_report(failures) -> str:
    """Render a failure list as text, one line per failed run.

    Failures carrying an :class:`Attempt` history get one indented line
    per attempt, so the report shows the seed bumps, timeouts and worker
    kills that preceded the terminal error.
    """
    failures = list(failures)
    if not failures:
        return "all runs completed"
    lines = [f"{len(failures)} run(s) failed:"]
    for failure in failures:
        lines.append(f"  - {failure}")
        for number, attempt in enumerate(getattr(failure, "attempts", ()), start=1):
            lines.append(f"      attempt {number}: {attempt}")
    return "\n".join(lines)


def format_recovery_report(actions) -> str:
    """Render the supervised backend's recovery log as text."""
    actions = list(actions)
    if not actions:
        return "no recovery actions taken"
    lines = [f"{len(actions)} recovery action(s):"]
    lines.extend(f"  - {action}" for action in actions)
    return "\n".join(lines)
