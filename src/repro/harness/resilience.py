"""Resilient execution of experiments: capture, retry, report.

A 5×5 grid sweep that dies on cell 23 of 25 throws away twenty-two
finished simulations and tells you nothing about where it died.  This
module gives the sweep and repetition runners a different failure mode:
each run is executed through :func:`run_with_retries`, which

* catches the failure,
* retries with a deterministically bumped seed (transient stochastic
  failures — an unlucky divergence, a pathological event ordering — often
  clear on a different random stream; systematic bugs do not),
* and, if every attempt fails, returns a :class:`RunFailure` carrying the
  structured error context (virtual time, component, invariant) from
  :mod:`repro.errors` instead of raising.

Sweeps then return partial results plus a failure report
(:func:`format_failure_report`), so one poisoned cell costs one cell.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import SimulationError
from repro.harness.experiment import Experiment, ExperimentResult, run_experiment

__all__ = [
    "RunFailure",
    "run_with_retries",
    "format_failure_report",
    "RETRY_SEED_STRIDE",
]

#: Added to the seed for each retry attempt.  A large prime, so bumped
#: seeds never collide with the caller's own seed sequence (1, 2, 3, ...).
RETRY_SEED_STRIDE = 100_003


@dataclass(frozen=True)
class RunFailure:
    """One experiment's terminal failure, after exhausting retries.

    ``seeds_tried`` lists every seed attempted (original plus bumps);
    ``sim_time``/``component``/``detail`` come from the structured
    :class:`~repro.errors.SimulationError` context when available.
    """

    label: str
    seeds_tried: Tuple[int, ...]
    error_type: str
    error: str
    sim_time: Optional[float] = None
    component: Optional[str] = None

    def __str__(self) -> str:
        where = f" at t={self.sim_time:.3f}s" if self.sim_time is not None else ""
        who = f" in {self.component}" if self.component else ""
        return (
            f"{self.label}: {self.error_type}{where}{who} "
            f"(seeds tried: {', '.join(map(str, self.seeds_tried))}) — {self.error}"
        )


def run_with_retries(
    experiment: Experiment,
    label: str,
    max_retries: int = 1,
) -> Tuple[Optional[ExperimentResult], Optional[RunFailure]]:
    """Run ``experiment``, retrying with bumped seeds on failure.

    Returns ``(result, None)`` on success and ``(None, failure)`` once
    the original seed plus ``max_retries`` bumped seeds have all failed.
    ``KeyboardInterrupt``/``SystemExit`` are never swallowed.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries cannot be negative (got {max_retries})")
    seeds = [experiment.seed + attempt * RETRY_SEED_STRIDE
             for attempt in range(max_retries + 1)]
    last_error: Optional[BaseException] = None
    for seed in seeds:
        try:
            return run_experiment(replace(experiment, seed=seed)), None
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            last_error = exc
    sim_time = getattr(last_error, "sim_time", None)
    component = getattr(last_error, "component", None)
    if isinstance(last_error, SimulationError) and last_error.context.get("callback"):
        component = component or last_error.context["callback"]
    return None, RunFailure(
        label=label,
        seeds_tried=tuple(seeds),
        error_type=type(last_error).__name__,
        error=str(last_error),
        sim_time=sim_time,
        component=component,
    )


def format_failure_report(failures) -> str:
    """Render a failure list as text, one line per failed run."""
    failures = list(failures)
    if not failures:
        return "all runs completed"
    lines = [f"{len(failures)} run(s) failed:"]
    lines.extend(f"  - {failure}" for failure in failures)
    return "\n".join(lines)
