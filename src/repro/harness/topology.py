"""Dumbbell testbed topology — the simulated equivalent of Figure 10.

The paper's testbed is two client–server pairs on either side of a Linux
AQM router.  The simulated dumbbell preserves what matters to the
experiments:

* all data packets share one bottleneck (AQM queue + serializing link);
* each flow has its own base RTT (per-flow netem delay in the testbed,
  per-flow forward/reverse pipes here), so RTT heterogeneity is possible;
* the reverse (ACK) path is uncongested;
* UDP sources feed the same bottleneck and terminate in counting sinks.

Per-packet sojourn times at the bottleneck, the AQM probability, the
queue-delay estimate and link utilization are all recorded here, on the
sampling grid the experiment requests (1 s in most of the paper's plots).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.aqm.base import AQM
from repro.metrics.flowstats import FlowTable
from repro.metrics.series import TimeSeries
from repro.net.faults import FaultInjector
from repro.net.link import Link
from repro.net.node import CountingSink
from repro.net.packet import ECN, Packet
from repro.net.pipe import Pipe
from repro.net.queue import AQMQueue
from repro.sim.engine import Simulator
from repro.sim.invariants import InvariantChecker
from repro.sim.random import RandomStreams
from repro.tcp import SENDERS, TcpReceiver, TcpSender
from repro.traffic.udp import UdpSource

__all__ = ["Dumbbell"]

#: ECN mode implied by each congestion-control name.
_ECN_MODE = {
    "reno": "off",
    "cubic": "off",
    "ecn-cubic": "classic",
    "dctcp": "scalable",
    "relentless": "scalable",
    "scalable-tcp": "scalable",
}


class Dumbbell:
    """A single-bottleneck testbed instance.

    Parameters
    ----------
    sim:
        The simulator.
    streams:
        Seeded stream factory; flows and sources draw start-time jitter
        and the AQM its drop randomness from here.
    capacity_bps:
        Bottleneck line rate.
    aqm:
        The AQM under test (``None`` → tail-drop).
    buffer_packets:
        Router buffer (Table 1: 40 000 packets).
    sample_period:
        Period of the sampled series (1 s in the paper's plots).
    record_sojourns:
        Keep every packet's bottleneck sojourn time (needed by the CDF
        and percentile figures; switch off for very long runs).
    link_batching:
        Enable event batching on the data path: the bottleneck link
        drains back-to-back transmissions in single event dispatches
        (:mod:`repro.net.link`) and every per-flow pipe keeps in-flight
        packets on an arrival train instead of one heap event each
        (:mod:`repro.net.pipe`).  Bit-exact either way.
    queue:
        Override the bottleneck queue with a custom link-drainable queue
        (e.g. :class:`repro.aqm.dualq.DualQueueCoupledAqm`).  When given,
        ``aqm`` must be None — the queue owns its own AQM logic — and the
        queue should already carry any sojourn callback it needs.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        capacity_bps: float,
        aqm: Optional[AQM],
        buffer_packets: int = 40_000,
        sample_period: float = 1.0,
        record_sojourns: bool = True,
        link_batching: bool = True,
        queue=None,
    ):
        self.sim = sim
        self.streams = streams
        self.capacity_bps = capacity_bps
        self.aqm = aqm
        self.flows = FlowTable()
        self.senders: Dict[int, TcpSender] = {}
        self.receivers: Dict[int, TcpReceiver] = {}
        self.udp_sources: Dict[int, UdpSource] = {}
        self._next_flow_id = 0
        self._fwd_pipes: Dict[int, Pipe] = {}
        self._udp_sink = CountingSink()

        self.sojourns = TimeSeries("sojourn")
        self.queue_delay = TimeSeries("queue_delay")
        self.probability = TimeSeries("probability")
        self.raw_probability = TimeSeries("raw_probability")
        self.utilization = TimeSeries("utilization")
        #: Per-flow congestion-window traces (filled when track_cwnd is on).
        self.cwnd_series: Dict[int, TimeSeries] = {}
        self.track_cwnd = False
        self._record_sojourns = record_sojourns

        if queue is not None:
            if aqm is not None:
                raise ValueError("pass either a custom queue or an aqm, not both")
            self.queue = queue
        else:
            self.queue = AQMQueue(
                sim,
                aqm,
                capacity_bps,
                buffer_packets=buffer_packets,
                on_sojourn=self._on_sojourn if record_sojourns else None,
            )
        self.link_batching = link_batching
        self.link = Link(sim, self.queue, capacity_bps, batching=link_batching)
        self.link.set_router(self._route)
        #: Set by :meth:`install_faults` / :meth:`enable_validation`.
        self.fault_injector: Optional[FaultInjector] = None
        self.invariant_checker: Optional[InvariantChecker] = None

        self._last_bytes = 0
        self.sample_period = sample_period
        sim.every(sample_period, self._sample)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _route(self, packet: Packet):
        pipe = self._fwd_pipes.get(packet.flow_id)
        return pipe if pipe is not None else self._udp_sink

    def _on_sojourn(self, now: float, sojourn: float, packet: Packet) -> None:
        self.sojourns.append(now, sojourn)

    def _sample(self) -> None:
        now = self.sim.now
        self.queue_delay.append(now, self.queue.queue_delay())
        prob_source = self.aqm if self.aqm is not None else self.queue
        if hasattr(prob_source, "probability"):
            self.probability.append(now, prob_source.probability)
            self.raw_probability.append(
                now, getattr(prob_source, "raw_probability", prob_source.probability)
            )
        delta = self.link.bytes_sent - self._last_bytes
        self._last_bytes = self.link.bytes_sent
        self.utilization.append(
            now, delta * 8.0 / (self.capacity_bps * self.sample_period)
        )
        if self.track_cwnd:
            for flow_id, sender in self.senders.items():
                series = self.cwnd_series.get(flow_id)
                if series is None:
                    series = self.cwnd_series[flow_id] = TimeSeries(
                        f"cwnd/{flow_id}"
                    )
                series.append(now, sender.cwnd)

    def set_capacity(self, capacity_bps: float) -> None:
        """Change the bottleneck rate (Figure 12's experiment)."""
        self.capacity_bps = capacity_bps
        self.link.set_capacity(capacity_bps)

    def install_faults(self, faults, rng) -> FaultInjector:
        """Wire a declarative fault schedule (see :mod:`repro.net.faults`)
        into the bottleneck link, queue and AQM.  Returns the injector,
        whose :attr:`~repro.net.faults.FaultInjector.timeline` records
        every fault transition with its virtual time."""
        if self.fault_injector is None:
            self.fault_injector = FaultInjector(
                self.sim, rng, link=self.link, queue=self.queue, aqm=self.aqm
            )
        self.fault_injector.install(faults)
        return self.fault_injector

    def enable_validation(self, check_interval: Optional[float] = None) -> InvariantChecker:
        """Attach a periodic :class:`~repro.sim.invariants.InvariantChecker`
        to the bottleneck (packet conservation, probability range, clock
        monotonicity, queue depth)."""
        if self.invariant_checker is None:
            kwargs = {} if check_interval is None else {"check_interval": check_interval}
            self.invariant_checker = InvariantChecker(
                self.sim, queue=self.queue, aqm=self.aqm, **kwargs
            )
            self.invariant_checker.start()
        return self.invariant_checker

    # ------------------------------------------------------------------
    # Flow construction
    # ------------------------------------------------------------------
    def add_tcp_flow(
        self,
        cc: str,
        rtt: float,
        start: float = 0.0,
        stop: Optional[float] = None,
        flow_size: Optional[int] = None,
        label: Optional[str] = None,
        jitter: float = 1.0,
        sack: bool = False,
    ) -> TcpSender:
        """Create one TCP flow of congestion control ``cc``.

        ``rtt`` is the two-way base propagation delay in seconds.  Start
        times receive uniform jitter up to ``jitter`` seconds to avoid
        artificial synchronization (as distinct real senders would).
        ``sack`` enables selective acknowledgements on both endpoints.
        """
        if cc not in SENDERS:
            raise ValueError(f"unknown congestion control {cc!r}; choose from {sorted(SENDERS)}")
        if rtt <= 0:
            raise ValueError(f"RTT must be positive (got {rtt})")
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        label = label or cc
        record = self.flows.add(flow_id, label, mss_bytes=1448)

        sender_cls = SENDERS[cc]
        sender = sender_cls(
            self.sim,
            flow_id,
            transmit=self.queue.enqueue,
            ecn_mode=_ECN_MODE[cc],
            flow_size=flow_size,
            sack=sack,
        )
        rev_pipe = Pipe(self.sim, rtt / 2.0, sink=sender, batching=self.link_batching)
        receiver = TcpReceiver(
            self.sim,
            flow_id,
            ack_out=rev_pipe.deliver,
            ecn_mode=_ECN_MODE[cc],
            on_data=lambda now, pkt, rec=record: rec.on_segment(now),
            sack=sack,
        )
        fwd_pipe = Pipe(self.sim, rtt / 2.0, sink=receiver, batching=self.link_batching)

        self._fwd_pipes[flow_id] = fwd_pipe
        self.senders[flow_id] = sender
        self.receivers[flow_id] = receiver

        rng = self.streams.stream(f"flow/{flow_id}")
        sender.start(at=start + rng.uniform(0.0, jitter))
        if stop is not None:
            if stop <= start:
                raise ValueError(f"stop ({stop}) must be after start ({start})")
            self.sim.at(stop, sender.stop)
        return sender

    def add_realtime_flow(
        self,
        rtt: float,
        interval: float = 0.020,
        payload_bytes: int = 200,
        start: float = 0.0,
        stop: Optional[float] = None,
        ecn: ECN = ECN.NOT_ECT,
        label: str = "realtime",
    ):
        """Create a latency-sensitive isochronous flow with QoE metering.

        Returns ``(source, sink)``; the sink's delay statistics isolate
        the bottleneck queuing component (the forward propagation delay
        is subtracted).
        """
        from repro.traffic.realtime import RealtimeSink, RealtimeSource

        if rtt <= 0:
            raise ValueError(f"RTT must be positive (got {rtt})")
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        self.flows.add(flow_id, label, mss_bytes=payload_bytes)
        sink = RealtimeSink(self.sim, base_delay=rtt / 2.0)
        fwd_pipe = Pipe(self.sim, rtt / 2.0, sink=sink, batching=self.link_batching)
        self._fwd_pipes[flow_id] = fwd_pipe
        source = RealtimeSource(
            self.sim,
            flow_id,
            transmit=self.queue.enqueue,
            interval=interval,
            payload_bytes=payload_bytes,
            ecn=ecn,
        )
        source.start(at=start, until=stop)
        return source, sink

    def add_udp_flow(
        self,
        rate_bps: float,
        start: float = 0.0,
        stop: Optional[float] = None,
        label: str = "udp",
        ecn: ECN = ECN.NOT_ECT,
    ) -> UdpSource:
        """Create one constant-bit-rate unresponsive flow."""
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        self.flows.add(flow_id, label, mss_bytes=1448)
        source = UdpSource(
            self.sim, flow_id, transmit=self.queue.enqueue, rate_bps=rate_bps, ecn=ecn
        )
        self.udp_sources[flow_id] = source
        source.start(at=start, until=stop)
        return source

    # ------------------------------------------------------------------
    # Read-outs
    # ------------------------------------------------------------------
    def goodput_bps(self, label: str, now: Optional[float] = None) -> List[float]:
        """Per-flow goodput for one class over the open window."""
        return self.flows.goodputs(label, now if now is not None else self.sim.now)

    def udp_delivered_bps(self, duration: float) -> float:
        """Aggregate UDP delivery rate over ``duration`` seconds."""
        if duration <= 0:
            raise ValueError(f"duration must be positive (got {duration})")
        return self._udp_sink.bytes * 8.0 / duration
