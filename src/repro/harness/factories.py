"""Standard AQM factories with the paper's Table 1 defaults.

Factories close over configuration and accept the per-run random stream,
matching the :data:`~repro.harness.experiment.AqmFactory` signature.  The
defaults are Table 1's: target 20 ms, PIE α = 2/16 / β = 20/16 with 100 ms
burst allowance, PI2 gains 2.5× PIE's, coupled (Scalable) gains 2× PI2's.

Each ``*_factory`` helper returns a :class:`NamedAqmFactory` rather than a
closure.  The two are interchangeable as callables, but the named form is

* **picklable** — required by the process-pool sweep executor
  (:mod:`repro.harness.parallel`), which ships whole experiments to
  worker processes, and
* **describable** — :meth:`NamedAqmFactory.cache_key` renders the AQM
  class and its keyword configuration as a stable string, which the
  on-disk result cache (:mod:`repro.harness.cache`) folds into the
  experiment's content hash.

Hand-written closures and lambdas still work everywhere serial; they are
simply excluded from parallel dispatch and caching.
"""

from __future__ import annotations

import random
from typing import Optional, Type

from repro.aqm.base import AQM
from repro.aqm.pi import PiAqm
from repro.aqm.pie import BarePieAqm, PieAqm
from repro.core.coupled import CoupledPi2Aqm
from repro.core.pi2 import Pi2Aqm

__all__ = [
    "NamedAqmFactory",
    "taildrop_factory",
    "pie_factory",
    "bare_pie_factory",
    "pi_factory",
    "pi2_factory",
    "coupled_factory",
    "FACTORIES",
]


class NamedAqmFactory:
    """Picklable, hashable-by-content AQM factory.

    Calling the factory with a :class:`random.Random` builds
    ``cls(rng=rng, **kwargs)`` (or returns ``None`` for tail-drop, when
    ``cls`` is None) — exactly what the closure-based factories used to
    do, but as a plain object the :mod:`pickle` module can move across
    process boundaries and the result cache can fingerprint.
    """

    __slots__ = ("cls", "kwargs")

    def __init__(self, cls: Optional[Type[AQM]], **kwargs):
        self.cls = cls
        self.kwargs = kwargs

    def __call__(self, rng: random.Random) -> Optional[AQM]:
        if self.cls is None:
            return None
        return self.cls(rng=rng, **self.kwargs)

    def cache_key(self) -> str:
        """Stable textual identity: class path + sorted configuration."""
        if self.cls is None:
            name = "taildrop"
        else:
            name = f"{self.cls.__module__}.{self.cls.__qualname__}"
        config = ",".join(f"{k}={self.kwargs[k]!r}" for k in sorted(self.kwargs))
        return f"{name}({config})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, NamedAqmFactory)
            and self.cls is other.cls
            and self.kwargs == other.kwargs
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NamedAqmFactory({self.cache_key()})"

    def __getstate__(self):
        return (self.cls, self.kwargs)

    def __setstate__(self, state) -> None:
        self.cls, self.kwargs = state


def taildrop_factory(**_ignored) -> NamedAqmFactory:
    """No AQM: the queue's tail-drop backstop is the only control."""
    return NamedAqmFactory(None)


def pie_factory(**kwargs) -> NamedAqmFactory:
    """Full Linux PIE (paper's comparator: heuristics on, reworked ECN rule)."""
    return NamedAqmFactory(PieAqm, **kwargs)


def bare_pie_factory(**kwargs) -> NamedAqmFactory:
    """PIE with all Section 5 heuristics disabled."""
    return NamedAqmFactory(BarePieAqm, **kwargs)


def pi_factory(**kwargs) -> NamedAqmFactory:
    """Un-tuned basic PI (the unstable 'pi' curve of Figure 6)."""
    return NamedAqmFactory(PiAqm, **kwargs)


def pi2_factory(**kwargs) -> NamedAqmFactory:
    """Single-class PI2 (Figure 8)."""
    return NamedAqmFactory(Pi2Aqm, **kwargs)


def coupled_factory(**kwargs) -> NamedAqmFactory:
    """Coupled PI+PI2 single-queue AQM (Figure 9) — the paper's 'PI2'
    configuration in the coexistence experiments."""
    return NamedAqmFactory(CoupledPi2Aqm, **kwargs)


#: Name → zero-config factory, for table-driven benchmarks.
FACTORIES = {
    "taildrop": taildrop_factory,
    "pie": pie_factory,
    "bare-pie": bare_pie_factory,
    "pi": pi_factory,
    "pi2": pi2_factory,
    "coupled": coupled_factory,
}
