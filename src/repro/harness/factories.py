"""Standard AQM factories with the paper's Table 1 defaults.

Factories close over configuration and accept the per-run random stream,
matching the :data:`~repro.harness.experiment.AqmFactory` signature.  The
defaults are Table 1's: target 20 ms, PIE α = 2/16 / β = 20/16 with 100 ms
burst allowance, PI2 gains 2.5× PIE's, coupled (Scalable) gains 2× PI2's.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.aqm.base import AQM
from repro.aqm.pi import PiAqm
from repro.aqm.pie import BarePieAqm, PieAqm
from repro.core.coupled import CoupledPi2Aqm
from repro.core.pi2 import Pi2Aqm

__all__ = [
    "taildrop_factory",
    "pie_factory",
    "bare_pie_factory",
    "pi_factory",
    "pi2_factory",
    "coupled_factory",
    "FACTORIES",
]


def taildrop_factory(**_ignored):
    """No AQM: the queue's tail-drop backstop is the only control."""

    def make(rng: random.Random) -> Optional[AQM]:
        return None

    return make


def pie_factory(**kwargs) -> Callable[[random.Random], AQM]:
    """Full Linux PIE (paper's comparator: heuristics on, reworked ECN rule)."""

    def make(rng: random.Random) -> AQM:
        return PieAqm(rng=rng, **kwargs)

    return make


def bare_pie_factory(**kwargs) -> Callable[[random.Random], AQM]:
    """PIE with all Section 5 heuristics disabled."""

    def make(rng: random.Random) -> AQM:
        return BarePieAqm(rng=rng, **kwargs)

    return make


def pi_factory(**kwargs) -> Callable[[random.Random], AQM]:
    """Un-tuned basic PI (the unstable 'pi' curve of Figure 6)."""

    def make(rng: random.Random) -> AQM:
        return PiAqm(rng=rng, **kwargs)

    return make


def pi2_factory(**kwargs) -> Callable[[random.Random], AQM]:
    """Single-class PI2 (Figure 8)."""

    def make(rng: random.Random) -> AQM:
        return Pi2Aqm(rng=rng, **kwargs)

    return make


def coupled_factory(**kwargs) -> Callable[[random.Random], AQM]:
    """Coupled PI+PI2 single-queue AQM (Figure 9) — the paper's 'PI2'
    configuration in the coexistence experiments."""

    def make(rng: random.Random) -> AQM:
        return CoupledPi2Aqm(rng=rng, **kwargs)

    return make


#: Name → zero-config factory, for table-driven benchmarks.
FACTORIES = {
    "taildrop": taildrop_factory,
    "pie": pie_factory,
    "bare-pie": bare_pie_factory,
    "pi": pi_factory,
    "pi2": pi2_factory,
    "coupled": coupled_factory,
}
