"""Experiment configuration and runner.

An :class:`Experiment` is a declarative description of one testbed run —
bottleneck rate (and optional schedule of rate changes), AQM factory,
TCP/UDP flow groups, duration and warm-up — and :func:`run_experiment`
executes it, returning an :class:`ExperimentResult` with exactly the
read-outs the paper's figures need:

* sampled queue delay, probability and utilization series;
* per-packet bottleneck sojourn times (for CDFs / percentiles);
* per-flow and per-class goodputs over the measurement window
  (everything after ``warmup``);
* queue and AQM counters.

The AQM is supplied as a *factory* taking the experiment's seeded stream
so that every run gets reproducible, isolated randomness.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.aqm.base import AQM
from repro.errors import ConfigError
from repro.harness.topology import Dumbbell
from repro.metrics.stats import percentile_summary, rate_balance_ratio
from repro.net.faults import Fault
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import engine_tracer, install_aqm_tracer
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

__all__ = [
    "FlowGroup",
    "UdpGroup",
    "Experiment",
    "ResultMetrics",
    "ExperimentResult",
    "run_experiment",
]

#: An AQM factory: receives a dedicated random stream, returns the AQM
#: (or None for tail-drop).
AqmFactory = Callable[[random.Random], Optional[AQM]]


@dataclass(frozen=True)
class FlowGroup:
    """``count`` TCP flows sharing one congestion control and base RTT."""

    cc: str
    count: int
    rtt: float
    start: float = 0.0
    stop: Optional[float] = None
    label: Optional[str] = None
    flow_size: Optional[int] = None
    sack: bool = False

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"count must be positive (got {self.count})")


@dataclass(frozen=True)
class UdpGroup:
    """``count`` constant-bit-rate unresponsive flows."""

    rate_bps: float
    count: int = 1
    start: float = 0.0
    stop: Optional[float] = None
    label: str = "udp"


@dataclass
class Experiment:
    """One run's declarative description."""

    capacity_bps: float
    duration: float
    aqm_factory: AqmFactory
    flows: Sequence[FlowGroup] = field(default_factory=list)
    udp: Sequence[UdpGroup] = field(default_factory=list)
    warmup: float = 5.0
    buffer_packets: int = 40_000
    seed: int = 1
    sample_period: float = 1.0
    record_sojourns: bool = True
    #: Optional (time, capacity_bps) schedule for mid-run rate changes.
    capacity_schedule: Sequence[Tuple[float, float]] = field(default_factory=tuple)
    #: Declarative fault schedule (see :mod:`repro.net.faults`).
    faults: Sequence[Fault] = field(default_factory=tuple)
    #: Run the periodic invariant checker alongside the simulation.
    validate: bool = False
    #: Drain back-to-back bottleneck transmissions in single event
    #: dispatches (bit-exact vs. the event-per-packet schedule; see
    #: :mod:`repro.net.link`).  Off is only useful for A/B measurement.
    link_batching: bool = True
    #: Event-scheduler backend: ``"wheel"`` (timer wheel + overflow heap,
    #: the default) or ``"heap"`` (the reference single binary heap).
    #: Both dispatch in the identical (time, seq) order, so results are
    #: bit-exact either way; heap is kept selectable for A/B parity runs
    #: (``repro run --scheduler=heap``).
    scheduler: str = "wheel"
    #: Watchdog budgets for the run (None = unlimited).
    max_events: Optional[int] = None
    max_wall_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.scheduler not in ("heap", "wheel"):
            raise ConfigError(
                f"scheduler must be 'heap' or 'wheel' (got {self.scheduler!r})"
            )
        if self.capacity_bps <= 0:
            raise ConfigError(f"capacity must be positive (got {self.capacity_bps})")
        if self.duration <= 0:
            raise ConfigError(f"duration must be positive (got {self.duration})")
        if not 0 <= self.warmup < self.duration:
            raise ConfigError(
                f"warmup must be in [0, duration) (got {self.warmup} vs {self.duration})"
            )
        if self.sample_period <= 0:
            raise ConfigError(
                f"sample_period must be positive (got {self.sample_period})"
            )
        if self.buffer_packets <= 0:
            raise ConfigError(
                f"buffer_packets must be positive (got {self.buffer_packets})"
            )
        if self.max_events is not None and self.max_events <= 0:
            raise ConfigError(f"max_events must be positive (got {self.max_events})")
        if self.max_wall_seconds is not None and self.max_wall_seconds <= 0:
            raise ConfigError(
                f"max_wall_seconds must be positive (got {self.max_wall_seconds})"
            )
        self._validate_capacity_schedule()
        self._validate_faults()

    def _validate_capacity_schedule(self) -> None:
        """Reject schedules that would otherwise fail deep inside ``sim.at``
        (or worse, silently never fire) with no configuration context."""
        previous = None
        for index, entry in enumerate(self.capacity_schedule):
            try:
                when, rate = entry
            except (TypeError, ValueError):
                raise ConfigError(
                    f"capacity_schedule[{index}] must be a (time, rate_bps) "
                    f"pair (got {entry!r})"
                ) from None
            if when < 0:
                raise ConfigError(
                    f"capacity_schedule[{index}] time cannot be negative "
                    f"(got {when})"
                )
            if when >= self.duration:
                raise ConfigError(
                    f"capacity_schedule[{index}] time {when} is outside "
                    f"[0, duration={self.duration})"
                )
            if rate <= 0:
                raise ConfigError(
                    f"capacity_schedule[{index}] rate must be positive "
                    f"(got {rate})"
                )
            if previous is not None and when < previous:
                raise ConfigError(
                    f"capacity_schedule must be sorted by time "
                    f"({when} after {previous})"
                )
            previous = when

    def _validate_faults(self) -> None:
        for index, fault in enumerate(self.faults):
            if not isinstance(fault, Fault):
                raise ConfigError(
                    f"faults[{index}] must be a Fault (got {type(fault).__name__})"
                )
            if fault.start >= self.duration:
                raise ConfigError(
                    f"faults[{index}] starts at {fault.start}, outside "
                    f"[0, duration={self.duration})"
                )


class ResultMetrics:
    """Derived read-outs shared by live and frozen experiment results.

    Subclasses provide the raw accessors — the sampled series properties
    (``queue_delay``/``probability``/``utilization``), per-packet
    :meth:`sojourn_samples`, per-class :meth:`goodputs` and
    :meth:`class_labels`, plus ``duration``/``warmup`` — and this mixin
    supplies every metric the figures compute from them.  Keeping the
    derivations here guarantees a :class:`~repro.harness.frozen.FrozenResult`
    (what parallel workers return and the result cache stores) answers
    identically to the live :class:`ExperimentResult` it was frozen from.
    """

    def sojourn_summary(self, percentiles=(1, 25, 50, 99)) -> Dict[str, float]:
        """Mean/percentile summary of per-packet sojourn times (seconds)."""
        return percentile_summary(self.sojourn_samples(), percentiles)

    def balance(self, label_a: str, label_b: str) -> float:
        """Rate-balance ratio between two flow classes (Figure 15 metric)."""
        return rate_balance_ratio(self.goodputs(label_a), self.goodputs(label_b))

    def total_goodput_bps(self) -> float:
        """Sum of goodput over every flow class, in bits/second."""
        return sum(
            sum(self.goodputs(label)) for label in self.class_labels()
        )

    def mean_utilization(self) -> float:
        """Mean bottleneck utilization after warmup (0..1)."""
        return self.utilization.mean(self.warmup)

    def utilization_summary(self, percentiles=(1, 99)) -> Dict[str, float]:
        """Percentile summary of the post-warmup utilization samples."""
        return percentile_summary(
            self.utilization.window(self.warmup, float("inf")), percentiles
        )

    def probability_summary(self, percentiles=(25, 99)) -> Dict[str, float]:
        """Percentile summary of the applied AQM probability (Figure 17)."""
        return percentile_summary(
            self.probability.window(self.warmup, float("inf")), percentiles
        )

    def digest(self) -> Dict[str, object]:
        """Exact (un-rounded) fingerprint of the run's headline read-outs.

        Two runs of the same seeded experiment must produce equal digests
        — serial or parallel, live or frozen, cached or fresh.  The perf
        harness and CI's determinism check compare these.
        """
        stats = self.queue_stats
        return {
            "queue_delay": [list(map(float, self.queue_delay.times)),
                            list(map(float, self.queue_delay.values))],
            "utilization": list(map(float, self.utilization.values)),
            "probability": list(map(float, self.probability.values)),
            "sojourn_sum": float(np.sum(self.sojourn_samples(from_warmup=False))),
            "sojourn_count": int(self.sojourn_samples(from_warmup=False).size),
            "goodputs": {
                label: [float(g) for g in self.goodputs(label)]
                for label in sorted(self.class_labels())
            },
            "counters": {
                "arrived": stats.arrived,
                "dequeued": stats.dequeued,
                "aqm_dropped": stats.aqm_dropped,
                "tail_dropped": stats.tail_dropped,
                "fault_dropped": stats.fault_dropped,
                "ce_marked": stats.ce_marked,
            },
        }

    def digest_hex(self) -> str:
        """Compact SHA-256 of :meth:`digest` (canonical JSON serialization).

        The same bit-exactness contract as :meth:`digest`, in a form that
        is cheap to store and compare: the result journal stamps every
        record with it, and the chaos tests compare interrupted-then-
        resumed sweeps against uninterrupted runs through it.  Python's
        ``repr``-exact float serialization makes equal runs hash equal.
        """
        payload = json.dumps(
            self.digest(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()


class ExperimentResult(ResultMetrics):
    """Read-outs of one completed run, backed by the live testbed."""

    def __init__(self, experiment: Experiment, bed: Dumbbell):
        self.experiment = experiment
        self.bed = bed
        self.duration = experiment.duration
        self.warmup = experiment.warmup
        #: Flat end-of-run metric snapshot (``engine.*``, ``aqm.*``,
        #: ``link.*``); populated by :func:`run_experiment`, carried into
        #: :class:`~repro.harness.frozen.FrozenResult`, and deliberately
        #: excluded from :meth:`ResultMetrics.digest`.
        self.telemetry: Optional[Dict[str, object]] = None

    # -- series ----------------------------------------------------------
    @property
    def queue_delay(self):
        """Sampled queue-delay time series at the bottleneck."""
        return self.bed.queue_delay

    @property
    def probability(self):
        """Sampled applied AQM probability (p) time series."""
        return self.bed.probability

    @property
    def raw_probability(self):
        """Sampled internal controller variable (p' for PI2)."""
        return self.bed.raw_probability

    @property
    def utilization(self):
        """Sampled bottleneck utilization time series (0..1)."""
        return self.bed.utilization

    # -- per-packet sojourns ------------------------------------------------
    def sojourn_samples(self, from_warmup: bool = True) -> np.ndarray:
        """Per-packet bottleneck sojourn times, post-warmup by default."""
        t0 = self.warmup if from_warmup else 0.0
        return self.bed.sojourns.window(t0, float("inf"))

    # -- flow rates -----------------------------------------------------------
    def goodputs(self, label: str) -> List[float]:
        """Per-flow goodput (bits/second) for one flow-class label."""
        return self.bed.goodput_bps(label, self.duration)

    def class_labels(self) -> List[str]:
        """Flow-class labels present in this experiment (e.g. 'dctcp')."""
        return self.bed.flows.labels()

    @property
    def queue_stats(self):
        """Bottleneck queue counters (arrived/dropped/marked/...)."""
        return self.bed.queue.stats

    @property
    def aqm(self):
        """The live AQM instance under test (for counter inspection)."""
        return self.bed.aqm

    # -- robustness read-outs -------------------------------------------------
    @property
    def fault_timeline(self) -> List[Tuple[float, str]]:
        """(virtual time, event) pairs of every injected-fault transition."""
        injector = self.bed.fault_injector
        return list(injector.timeline) if injector is not None else []

    @property
    def invariant_checks(self) -> int:
        """Number of periodic invariant passes that ran (0 = validation off)."""
        checker = self.bed.invariant_checker
        return checker.checks_run if checker is not None else 0

    def freeze(self) -> "FrozenResult":
        """Detach a picklable snapshot (see :mod:`repro.harness.frozen`)."""
        from repro.harness.frozen import freeze_result

        return freeze_result(self)


def run_experiment(
    experiment: Experiment, tracer: Optional[object] = None
) -> ExperimentResult:
    """Build the dumbbell, run to ``duration``, and collect results.

    Fault schedules, the invariant checker and the run watchdog are all
    wired here from the experiment's declarative fields; a failing run
    raises a structured :class:`~repro.errors.SimulationError` carrying
    virtual-time and component context.

    ``tracer`` is an optional :class:`~repro.obs.trace.Tracer`.  It is a
    pure observer: the AQM's control-law hooks and the engine's dispatch
    loop emit typed events into it, but results are bit-exact
    (``digest()``-equal) with tracing on or off.  Independent of the
    tracer, every run registers its components into a
    :class:`~repro.obs.metrics.MetricsRegistry` whose snapshot lands on
    ``result.telemetry``.
    """
    sim = Simulator(scheduler=experiment.scheduler)
    streams = RandomStreams(experiment.seed)
    aqm = experiment.aqm_factory(streams.stream("aqm"))
    # Instrumentation must precede Dumbbell construction: attaching the
    # AQM binds ``aqm.update`` into its periodic timer, so the traced
    # wrapper has to be installed first to be the bound target.
    install_aqm_tracer(aqm, tracer)
    sim.set_tracer(engine_tracer(tracer))
    registry = MetricsRegistry()
    registry.set("scheduler", experiment.scheduler)
    registry.set("seed", experiment.seed)
    sim.register_metrics(registry)
    if aqm is not None:
        aqm.register_metrics(registry)
    bed = Dumbbell(
        sim,
        streams,
        experiment.capacity_bps,
        aqm,
        buffer_packets=experiment.buffer_packets,
        sample_period=experiment.sample_period,
        record_sojourns=experiment.record_sojourns,
        link_batching=experiment.link_batching,
    )
    for group in experiment.flows:
        for _ in range(group.count):
            bed.add_tcp_flow(
                group.cc,
                rtt=group.rtt,
                start=group.start,
                stop=group.stop,
                flow_size=group.flow_size,
                label=group.label or group.cc,
                sack=group.sack,
            )
    for group in experiment.udp:
        for _ in range(group.count):
            bed.add_udp_flow(
                group.rate_bps, start=group.start, stop=group.stop, label=group.label
            )
    for when, rate in experiment.capacity_schedule:
        sim.call_at(when, bed.set_capacity, rate)
    if experiment.faults:
        bed.install_faults(experiment.faults, streams.stream("faults"))
    if experiment.validate:
        bed.enable_validation()
    if experiment.max_events is not None or experiment.max_wall_seconds is not None:
        sim.set_watchdog(
            max_events=experiment.max_events,
            max_wall_seconds=experiment.max_wall_seconds,
        )

    bed.link.register_metrics(registry)

    sim.call_at(experiment.warmup, bed.flows.open_windows, experiment.warmup)
    sim.run(until=experiment.duration)
    if bed.invariant_checker is not None:
        bed.invariant_checker.check_now()
    result = ExperimentResult(experiment, bed)
    result.telemetry = registry.snapshot()
    return result
