"""Crash-safe, append-only journal of completed sweep cells.

A 5×5 coexistence grid interrupted at minute 40 — Ctrl-C, an OOM-killed
parent, a power cut — used to discard every finished cell.  This module
gives sweeps a write-ahead journal: as each cell completes, its frozen
result (:class:`~repro.harness.frozen.FrozenResult`) is appended to a
single journal file and **fsync'd before the sweep moves on**, so the set
of durable results always trails execution by at most one record.  A
resumed sweep (``resume=True`` on the sweep APIs, ``--resume`` on the
CLI) replays journaled cells and re-executes only the remainder —
bit-exactly reproducing what an uninterrupted run would have returned,
because replayed cells *are* the results the interrupted run produced
and the remainder re-runs under the same seeds.

Keying
------
Records are keyed by :func:`~repro.harness.cache.experiment_cache_key` —
the same config + source-code fingerprint the on-disk result cache uses.
Any edit to the simulator or to the sweep's configuration changes every
key, so a stale journal silently replays **nothing** and the sweep simply
re-executes; a journal can never leak results from different code or
configuration into a resumed run.  Cells whose experiment is uncacheable
(lambda/closure AQM factories have no stable identity) are not journaled
and are re-executed on resume.

Torn records
------------
A crash can interrupt an append, leaving a torn final record.  Each
record carries its payload length and a SHA-256 checksum; readers stop at
the first incomplete or corrupt record and report the intact prefix
(:attr:`JournalReplay.torn`).  Re-opening a torn journal for writing
truncates the tail back to the last intact record before appending, so
one crash never poisons subsequent appends.

Compaction
----------
Appends are strictly append-only, so a journal reused across runs (or a
very long sweep re-recording cells) accumulates superseded records —
replay keeps only the **latest** record per key, but the file keeps them
all.  :meth:`ResultJournal.compact` rewrites the file keeping just the
latest record per key (atomically: temp file + fsync + rename, so a
crash mid-compaction loses nothing), and ``compact_every=N`` makes the
journal do that automatically after every ``N`` appends.  Compaction
never changes what a resume replays: the replay map before and after is
identical.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import JournalError
from repro.harness.frozen import FrozenResult

__all__ = [
    "JOURNAL_MAGIC",
    "JOURNAL_SCHEMA",
    "JournalRecord",
    "JournalReplay",
    "ResultJournal",
]

#: File magic: identifies a result journal and its framing version.
JOURNAL_MAGIC = b"REPRO-JOURNAL-v1\n"

#: Bumped whenever the record payload layout changes.
JOURNAL_SCHEMA = 1

#: Per-record header: little-endian payload length + SHA-256 of payload.
_LEN_STRUCT = struct.Struct("<Q")
_HEADER_SIZE = _LEN_STRUCT.size + hashlib.sha256().digest_size


@dataclass(frozen=True)
class JournalRecord:
    """One journaled cell: its key, display label, digest and result."""

    key: str
    label: str
    digest: str
    result: FrozenResult


@dataclass
class JournalReplay:
    """Everything a read pass recovered from a journal file.

    ``torn`` is True when the file ended in an incomplete or corrupt
    record (the normal aftermath of a crash mid-append); ``valid_bytes``
    is the offset of the last intact record's end — the write position a
    re-opened journal truncates back to.
    """

    records: List[JournalRecord] = field(default_factory=list)
    torn: bool = False
    valid_bytes: int = 0
    discarded_bytes: int = 0

    def replay_map(self) -> Dict[str, FrozenResult]:
        """Key → result map for resume (later records win on duplicates)."""
        return {record.key: record.result for record in self.records}


class ResultJournal:
    """Append-only, fsync'd store of completed cells in one file.

    The parent sweep process is the only writer; workers return frozen
    results over the pool/pipe seam and the parent appends them here as
    they arrive.  ``sync=False`` skips the per-record fsync (used by the
    benchmark harness to separate serialization cost from durability
    cost); correctness of *reads* never depends on it.
    """

    def __init__(
        self,
        path: os.PathLike | str,
        sync: bool = True,
        compact_every: Optional[int] = None,
    ):
        if compact_every is not None and compact_every < 1:
            raise JournalError(
                f"compact_every must be a positive append count, "
                f"got {compact_every!r}"
            )
        self.path = Path(path)
        self.sync = sync
        self.appended = 0
        self.compactions = 0
        self.compact_every = compact_every
        self._handle: Optional[io.BufferedWriter] = None

    # -- writing ---------------------------------------------------------
    def append(self, key: str, label: str, result: FrozenResult) -> None:
        """Durably append one completed cell (length + checksum framing)."""
        if not key:
            raise JournalError("journal records need a non-empty key")
        payload = self._encode(key, label, result)
        handle = self._writer()
        handle.write(_LEN_STRUCT.pack(len(payload)))
        handle.write(hashlib.sha256(payload).digest())
        handle.write(payload)
        handle.flush()
        if self.sync:
            os.fsync(handle.fileno())
        self.appended += 1
        if self.compact_every is not None:
            if self.appended % self.compact_every == 0:
                self.compact()

    @staticmethod
    def _encode(key: str, label: str, result: FrozenResult) -> bytes:
        """Pickle one record's payload (framing is added by the caller)."""
        return pickle.dumps(
            {
                "schema": JOURNAL_SCHEMA,
                "key": key,
                "label": label,
                "digest": result.digest_hex(),
                "result": result,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def compact(self) -> int:
        """Rewrite the journal keeping only the latest record per key.

        Returns the number of superseded records dropped (a torn tail,
        which never decoded into a record, is healed but not counted).
        The rewrite is atomic — records stream into a
        sibling temp file which is fsync'd and renamed over the original —
        so a crash at any point leaves either the old or the new journal,
        both of which replay to the same map.  Surviving records keep the
        order in which their key last completed, preserving replay
        semantics (later records win) trivially: after compaction every
        key appears exactly once.
        """
        replay = self.read()
        latest: Dict[str, JournalRecord] = {}
        for record in replay.records:
            # Re-insert so the surviving record sits at its *latest*
            # completion position, not its first.
            latest.pop(record.key, None)
            latest[record.key] = record
        dropped = len(replay.records) - len(latest)
        if dropped == 0 and not replay.torn:
            return 0
        self.close()
        tmp_path = self.path.with_name(self.path.name + ".compact")
        with tmp_path.open("wb") as handle:
            handle.write(JOURNAL_MAGIC)
            for record in latest.values():
                payload = self._encode(
                    record.key, record.label, record.result
                )
                handle.write(_LEN_STRUCT.pack(len(payload)))
                handle.write(hashlib.sha256(payload).digest())
                handle.write(payload)
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        if self.sync:
            self._fsync_dir()
        self.compactions += 1
        return dropped

    def _fsync_dir(self) -> None:
        """Make the compaction rename itself durable (best effort)."""
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fsync
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _writer(self) -> io.BufferedWriter:
        """Open (once) for appending, truncating any torn tail first."""
        if self._handle is None:
            if self.path.exists():
                replay = self.read()
                self._handle = self.path.open("r+b")
                self._handle.seek(replay.valid_bytes)
                self._handle.truncate(replay.valid_bytes)
            else:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("wb")
                self._handle.write(JOURNAL_MAGIC)
                self._handle.flush()
                if self.sync:
                    os.fsync(self._handle.fileno())
        return self._handle

    def close(self) -> None:
        """Flush and close the write handle (reads reopen independently)."""
        if self._handle is not None:
            self._handle.flush()
            if self.sync:
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reading ---------------------------------------------------------
    def read(self) -> JournalReplay:
        """Scan the journal, returning every intact record.

        A missing file reads as an empty journal (a first run with
        ``resume=True`` is a plain run).  A file that is not a journal at
        all raises :class:`~repro.errors.JournalError`; a torn tail does
        not — the intact prefix comes back with ``torn=True``.
        """
        replay = JournalReplay()
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return replay
        if not data.startswith(JOURNAL_MAGIC):
            raise JournalError(
                f"{self.path} is not a result journal "
                f"(bad magic; expected {JOURNAL_MAGIC!r})"
            )
        offset = len(JOURNAL_MAGIC)
        replay.valid_bytes = offset
        while offset < len(data):
            record, end = self._read_record(data, offset)
            if record is None:
                replay.torn = True
                replay.discarded_bytes = len(data) - offset
                break
            replay.records.append(record)
            replay.valid_bytes = end
            offset = end
        return replay

    @staticmethod
    def _read_record(
        data: bytes, offset: int
    ) -> Tuple[Optional[JournalRecord], int]:
        """Decode one record at ``offset``; (None, offset) when torn."""
        header_end = offset + _HEADER_SIZE
        if header_end > len(data):
            return None, offset
        (length,) = _LEN_STRUCT.unpack_from(data, offset)
        checksum = data[offset + _LEN_STRUCT.size: header_end]
        payload_end = header_end + length
        if payload_end > len(data):
            return None, offset
        payload = data[header_end:payload_end]
        if hashlib.sha256(payload).digest() != checksum:
            return None, offset
        try:
            entry = pickle.loads(payload)
            record = JournalRecord(
                key=entry["key"],
                label=entry["label"],
                digest=entry["digest"],
                result=entry["result"],
            )
        except Exception:
            # Checksum matched but the payload does not decode (schema
            # drift, version skew): treat as the end of usable history.
            return None, offset
        if entry.get("schema") != JOURNAL_SCHEMA:
            return None, offset
        return record, payload_end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ResultJournal {self.path} appended={self.appended}>"
