"""Supervised sweep execution: watchdogged workers that survive failure.

:func:`~repro.harness.parallel.execute_tasks` fans sweep cells out over a
``multiprocessing`` pool, but the pool itself is brittle: a worker that
hangs stalls the whole map, and a worker the kernel SIGKILLs (OOM) loses
its task forever.  This module is the execution layer that survives
process-level failure — the prerequisite for the distributed backend the
roadmap plugs in at this same seam:

* **process-per-task isolation** — each attempt runs in its own forked
  worker, so a crash is observable (pipe EOF + exit code) instead of
  wedging a shared pool;
* **per-task wall-clock timeouts** and **worker heartbeats** — a hung or
  frozen worker is killed and the task retried, rather than stalling the
  sweep;
* **bounded retry with exponential backoff**, centralizing the retry
  policy: simulation exceptions retry on deterministically bumped seeds
  (the exact :data:`~repro.harness.resilience.RETRY_SEED_STRIDE`
  sequence the serial runner uses, so supervised and serial sweeps make
  the same recovery decisions), while process-level failures — timeout,
  SIGKILL, stalled heartbeats — retry the *same* seed, because the cause
  was external and determinism demands the rerun be identical;
* **graceful degradation to serial execution** after repeated pool
  failures — if workers cannot even be spawned, the sweep finishes
  in-process rather than dying;
* every recovery action is recorded (:class:`SupervisorReport`) through
  the same report machinery as :mod:`repro.harness.resilience`, and
  terminal failures carry the full :class:`~repro.harness.resilience.Attempt`
  history and worker identity.

Combined with the write-ahead journal (:mod:`repro.harness.journal`),
this makes sweeps resumable: completed cells are fsync'd as they finish,
and ``resume=True`` replays them instead of re-simulating.  The ordering
and seeding contract of :func:`execute_tasks` is preserved exactly, so a
fixed seed gives bit-identical outcomes serial, pooled, supervised,
interrupted-and-resumed, or degraded.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field, replace
from multiprocessing import connection
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ConfigError, ParallelExecutionError, SupervisorError
from repro.harness.cache import (
    ResultCache,
    SharedResultCache,
    experiment_cache_key,
)
from repro.harness.frozen import freeze_result
from repro.harness.journal import ResultJournal
from repro.harness.parallel import (
    SweepTask,
    TaskResult,
    _check_picklable,
    _start_method,
    resolve_jobs,
)
from repro.harness.resilience import (
    RETRY_SEED_STRIDE,
    Attempt,
    RecoveryAction,
    RunFailure,
)

__all__ = [
    "SupervisorConfig",
    "SupervisorReport",
    "execute_supervised",
    "run_supervised_tasks",
]

#: Scheduler poll period: how often timeouts/heartbeats are re-checked.
_TICK_SECONDS = 0.05


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables of the supervised execution backend.

    ``task_timeout`` is the per-*attempt* wall-clock budget (None =
    unlimited).  Heartbeats are always emitted by workers every
    ``heartbeat_interval`` seconds; staleness only kills a worker when
    ``heartbeat_timeout`` is set (a process can be alive but frozen —
    e.g. SIGSTOP — which a timeout alone would catch much later).

    ``max_retries`` bounds seed-bump retries after simulation exceptions
    (the policy previously inlined in the grid/mix/repeat sweeps);
    ``max_task_failures`` bounds same-seed retries after process-level
    failures, with exponential backoff ``backoff_base *
    backoff_factor**n`` capped at ``backoff_max``.  After
    ``max_pool_failures`` consecutive worker-spawn failures the backend
    degrades to in-process serial execution for the rest of the sweep.
    """

    task_timeout: Optional[float] = None
    heartbeat_interval: float = 0.5
    heartbeat_timeout: Optional[float] = None
    max_retries: int = 1
    max_task_failures: int = 2
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    max_pool_failures: int = 3

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigError(
                f"task_timeout must be positive or None (got {self.task_timeout})"
            )
        if self.heartbeat_interval <= 0:
            raise ConfigError(
                f"heartbeat_interval must be positive (got {self.heartbeat_interval})"
            )
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ConfigError(
                f"heartbeat_timeout must be positive or None "
                f"(got {self.heartbeat_timeout})"
            )
        if self.max_retries < 0:
            raise ConfigError(f"max_retries cannot be negative (got {self.max_retries})")
        if self.max_task_failures < 0:
            raise ConfigError(
                f"max_task_failures cannot be negative (got {self.max_task_failures})"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_max < 0:
            raise ConfigError(
                "backoff parameters must satisfy base >= 0, factor >= 1, max >= 0"
            )
        if self.max_pool_failures < 1:
            raise ConfigError(
                f"max_pool_failures must be at least 1 (got {self.max_pool_failures})"
            )


@dataclass
class SupervisorReport:
    """What one supervised run did beyond simply executing its tasks.

    ``actions`` is the recovery log (kills, retries, seed bumps,
    degradation), ``replayed`` counts cells filled from the journal,
    ``cache_hits`` cells filled from the result cache, ``executed``
    cells actually simulated, and ``journal_appends`` records durably
    written.  ``heartbeats`` counts heartbeat messages observed — proof
    the liveness channel was active during the run.  ``deferred`` counts
    spawn decisions that skipped past a cell another process held in
    flight in the shared cache (shared-cache-aware scheduling).
    """

    actions: List[RecoveryAction] = field(default_factory=list)
    degraded: bool = False
    torn_journal: bool = False
    replayed: int = 0
    cache_hits: int = 0
    executed: int = 0
    journal_appends: int = 0
    heartbeats: int = 0
    deferred: int = 0

    def record(self, action: RecoveryAction) -> None:
        """Append one recovery action to the log."""
        self.actions.append(action)

    def register_metrics(self, registry) -> None:
        """Register the run's counters under the ``supervisor.`` prefix.

        ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry`;
        the provider is read at snapshot time, so register after (or
        during) the run and snapshot once it finishes.
        """
        registry.register_provider("supervisor", self._metrics_snapshot)

    def _metrics_snapshot(self) -> dict:
        """Flat metric values mirroring the report's counters."""
        return {
            "actions": len(self.actions),
            "degraded": int(self.degraded),
            "torn_journal": int(self.torn_journal),
            "replayed": self.replayed,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "journal_appends": self.journal_appends,
            "heartbeats": self.heartbeats,
            "deferred": self.deferred,
        }

    def format_actions(self) -> str:
        """Human-readable recovery log (see ``format_recovery_report``)."""
        from repro.harness.resilience import format_recovery_report

        return format_recovery_report(self.actions)


def _supervised_worker(conn, experiment, heartbeat_interval: float) -> None:
    """Worker body: heartbeat thread + one experiment, reported by pipe.

    Sends ``("hb",)`` every ``heartbeat_interval`` seconds from a daemon
    thread, then exactly one of ``("ok", frozen_result)`` or
    ``("err", (type_name, message, sim_time, component))``.  A SIGKILL
    leaves the pipe closed with neither — which is precisely how the
    parent recognises a crash.
    """
    import threading

    send_lock = threading.Lock()
    stop = threading.Event()

    def send(message) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):  # parent went away
                pass

    def beat() -> None:
        while not stop.is_set():
            send(("hb",))
            stop.wait(heartbeat_interval)

    heartbeat = threading.Thread(target=beat, daemon=True)
    heartbeat.start()
    try:
        from repro.harness.experiment import run_experiment

        result = run_experiment(experiment)
        frozen = freeze_result(result)
        stop.set()
        send(("ok", frozen))
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        stop.set()
        send(
            (
                "err",
                (
                    type(exc).__name__,
                    str(exc),
                    getattr(exc, "sim_time", None),
                    getattr(exc, "component", None),
                ),
            )
        )
    finally:
        conn.close()


def _start_worker(ctx, state: "_TaskState", config: SupervisorConfig) -> "_Worker":
    """Spawn one worker process for one attempt (monkeypatchable seam)."""
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    experiment = replace(state.task.experiment, seed=state.seed)
    process = ctx.Process(
        target=_supervised_worker,
        args=(child_conn, experiment, config.heartbeat_interval),
        daemon=True,
    )
    process.start()
    child_conn.close()
    now = time.monotonic()
    deadline = (
        now + config.task_timeout if config.task_timeout is not None else None
    )
    return _Worker(
        state=state,
        process=process,
        conn=parent_conn,
        started=now,
        last_heartbeat=now,
        deadline=deadline,
    )


class _TaskState:
    """Mutable retry bookkeeping for one task across its attempts."""

    __slots__ = (
        "index", "task", "seed", "bumps", "proc_failures", "attempts", "not_before",
    )

    def __init__(self, index: int, task: SweepTask):
        self.index = index
        self.task = task
        self.seed = task.experiment.seed
        self.bumps = 0
        self.proc_failures = 0
        self.attempts: List[Attempt] = []
        self.not_before = 0.0


class _Worker:
    """One live worker process and the supervision state around it."""

    __slots__ = ("state", "process", "conn", "started", "last_heartbeat", "deadline")

    def __init__(self, state, process, conn, started, last_heartbeat, deadline):
        self.state = state
        self.process = process
        self.conn = conn
        self.started = started
        self.last_heartbeat = last_heartbeat
        self.deadline = deadline

    @property
    def identity(self) -> str:
        """Worker identity for reports (``pid:<n>``)."""
        return f"pid:{self.process.pid}"

    def kill(self) -> None:
        """Hard-stop the worker and reap it."""
        try:
            self.process.kill()
        except (OSError, ValueError):  # already gone / never started
            pass
        self.process.join(timeout=5.0)
        self.conn.close()

    def reap(self) -> None:
        """Join a worker that finished on its own."""
        self.process.join(timeout=5.0)
        self.conn.close()


class _Supervisor:
    """The scheduler: slots, deadlines, retries, journal, degradation."""

    def __init__(self, tasks, jobs, on_error, config, cache, journal, report,
                 tracer=None):
        self.tasks = list(tasks)
        self.n_jobs = resolve_jobs(jobs)
        self.on_error = on_error
        self.config = config
        self.cache = cache
        self.journal = journal
        self.report = report
        #: Fire-and-forget span sink (None = tracing off).  The
        #: supervisor only ever *emits* into it; no tracer output feeds
        #: scheduling decisions (the OBS static-analysis contract).
        self.emit = tracer.emit if tracer is not None else None
        self.out: List[Optional[TaskResult]] = [None] * len(self.tasks)
        self.keys: List[Optional[str]] = [None] * len(self.tasks)
        self.queue: List[_TaskState] = []
        self.running: Dict[object, _Worker] = {}
        self.pool_failures = 0
        self.replayed_indices: set = set()

    # -- set-up ----------------------------------------------------------
    def prefill(self, resume: bool) -> None:
        """Fill slots from the journal (resume) and the result cache."""
        need_keys = self.cache is not None or self.journal is not None
        if need_keys:
            for index, task in enumerate(self.tasks):
                self.keys[index] = experiment_cache_key(task.experiment)
        replay = {}
        if resume and self.journal is not None:
            journal_replay = self.journal.read()
            replay = journal_replay.replay_map()
            self.report.torn_journal = journal_replay.torn
        for index, task in enumerate(self.tasks):
            key = self.keys[index]
            if key is not None and key in replay:
                self.out[index] = (replay[key], None)
                self.replayed_indices.add(index)
                self.report.replayed += 1
                continue
            if self.cache is not None and key is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    self.out[index] = (hit, None)
                    self.report.cache_hits += 1
                    if self.emit is not None:
                        self.emit("harness", "cache_hit", 0.0,
                                  {"label": task.label})
                    self._journal_append(index, hit)
                    continue
            self.queue.append(_TaskState(index, task))

    # -- completion paths ------------------------------------------------
    def _journal_append(self, index: int, result) -> None:
        key = self.keys[index]
        if self.journal is None or key is None:
            return
        started = time.monotonic()
        self.journal.append(key, self.tasks[index].label, result)
        self.report.journal_appends += 1
        if self.emit is not None:
            self.emit("harness", "journal_append", 0.0, {
                "label": self.tasks[index].label,
                "seconds": time.monotonic() - started,
            })

    def _finish_success(self, state: _TaskState, result) -> None:
        self.out[state.index] = (result, None)
        self.report.executed += 1
        if self.emit is not None:
            self.emit("harness", "task_done", 0.0, {
                "label": state.task.label,
                "ok": True,
                "seed": state.seed,
                "attempts": len(state.attempts) + 1,
            })
        if state.attempts:
            self.report.record(
                RecoveryAction(
                    label=state.task.label,
                    action="recovered",
                    detail=f"succeeded on attempt {len(state.attempts) + 1} "
                           f"(seed {state.seed})",
                )
            )
        key = self.keys[state.index]
        if self.cache is not None and key is not None:
            self.cache.put(key, result)
        self._journal_append(state.index, result)

    def _finish_failure(self, state: _TaskState, error_type: str, error: str,
                        sim_time=None, component=None, worker=None) -> None:
        if self.emit is not None:
            self.emit("harness", "task_done", 0.0, {
                "label": state.task.label,
                "ok": False,
                "error_type": error_type,
                "sim_time": sim_time,
            })
        self.out[state.index] = (
            None,
            RunFailure(
                label=state.task.label,
                seeds_tried=tuple(a.seed for a in state.attempts),
                error_type=error_type,
                error=error,
                sim_time=sim_time,
                component=component,
                attempts=tuple(state.attempts),
                worker=worker,
            ),
        )

    # -- retry policy (the one place deciding what failure costs) --------
    def _attempt_failed(self, state: _TaskState, kind: str, error_type: str,
                        error: str, worker: Optional[str],
                        sim_time=None, component=None) -> None:
        """Record one failed attempt and either requeue or finalise."""
        now = time.monotonic()
        if kind == "exception":
            retry = self.on_error == "capture" and state.bumps < self.config.max_retries
            backoff = 0.0
        else:
            retry = state.proc_failures < self.config.max_task_failures
            backoff = min(
                self.config.backoff_base
                * self.config.backoff_factor ** state.proc_failures,
                self.config.backoff_max,
            ) if retry else 0.0
        state.attempts.append(
            Attempt(
                seed=state.seed,
                kind=kind,
                error_type=error_type,
                error=error,
                worker=worker,
                backoff_s=backoff,
            )
        )
        if not retry:
            self._finish_failure(
                state, error_type, error,
                sim_time=sim_time, component=component, worker=worker,
            )
            return
        if kind == "exception":
            state.bumps += 1
            state.seed = (
                state.task.experiment.seed + state.bumps * RETRY_SEED_STRIDE
            )
            detail = (
                f"seed-bump retry {state.bumps}/{self.config.max_retries} "
                f"(seed {state.seed}) after {error_type}"
            )
        else:
            state.proc_failures += 1
            state.not_before = now + backoff
            detail = (
                f"same-seed retry {state.proc_failures}/"
                f"{self.config.max_task_failures} after {kind} "
                f"(backoff {backoff:.2g}s)"
            )
        self.report.record(
            RecoveryAction(
                label=state.task.label, action=f"retry after {kind}",
                detail=detail, worker=worker,
            )
        )
        if self.emit is not None:
            self.emit("harness", "task_retry", 0.0, {
                "label": state.task.label,
                "kind": kind,
                "error_type": error_type,
                "seed": state.seed,
                "sim_time": sim_time,
                "seconds": backoff,
            })
        self.queue.append(state)

    # -- worker lifecycle ------------------------------------------------
    def _spawn(self, ctx, state: _TaskState) -> bool:
        """Start one attempt; returns False on a spawn (pool) failure."""
        if isinstance(self.cache, SharedResultCache):
            # A concurrent sweep over the same shared cache may have
            # published this cell since prefill; re-check before paying
            # for a worker process.
            key = self.keys[state.index]
            if key is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    self.out[state.index] = (hit, None)
                    self.report.cache_hits += 1
                    self._journal_append(state.index, hit)
                    return True
        try:
            worker = _start_worker(ctx, state, self.config)
        except (OSError, RuntimeError) as exc:
            self.pool_failures += 1
            self.report.record(
                RecoveryAction(
                    label=state.task.label,
                    action="spawn failed",
                    detail=f"{type(exc).__name__}: {exc} "
                           f"({self.pool_failures}/{self.config.max_pool_failures} "
                           f"consecutive)",
                )
            )
            state.not_before = time.monotonic() + self.config.backoff_base
            self.queue.insert(0, state)
            if self.pool_failures >= self.config.max_pool_failures:
                self.report.degraded = True
                self.report.record(
                    RecoveryAction(
                        label="(pool)",
                        action="degrade to serial",
                        detail=f"{self.pool_failures} consecutive spawn failures; "
                               f"finishing the sweep in-process",
                    )
                )
            return False
        self.pool_failures = 0
        self.running[worker.conn] = worker
        if self.emit is not None:
            self.emit("harness", "task_start", 0.0, {
                "label": state.task.label,
                "seed": state.seed,
                "worker": worker.identity,
                "backend": "supervised",
            })
        return True

    def _kill_worker(self, worker: _Worker, kind: str, error: str) -> None:
        identity = worker.identity
        worker.kill()
        del self.running[worker.conn]
        self._attempt_failed(
            worker.state, kind, _PROCESS_ERROR_TYPES[kind], error, identity
        )

    def _handle_messages(self, ready) -> None:
        for conn in ready:
            worker = self.running.get(conn)
            if worker is None:
                continue
            while True:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    # Pipe closed with no result: the worker crashed or
                    # was killed (OOM, SIGKILL) mid-task.
                    exitcode = worker.process.exitcode
                    identity = worker.identity
                    worker.reap()
                    del self.running[conn]
                    self._attempt_failed(
                        worker.state,
                        "killed",
                        _PROCESS_ERROR_TYPES["killed"],
                        f"worker exited without a result (exitcode {exitcode})",
                        identity,
                    )
                    break
                tag = message[0]
                if tag == "hb":
                    worker.last_heartbeat = time.monotonic()
                    self.report.heartbeats += 1
                    continue
                if tag == "ok":
                    worker.reap()
                    del self.running[conn]
                    self._finish_success(worker.state, message[1])
                    break
                if tag == "err":
                    error_type, error, sim_time, component = message[1]
                    identity = worker.identity
                    worker.reap()
                    del self.running[conn]
                    self._attempt_failed(
                        worker.state, "exception", error_type, error,
                        identity, sim_time=sim_time, component=component,
                    )
                    break

    def _check_watchdogs(self) -> None:
        now = time.monotonic()
        for worker in list(self.running.values()):
            if worker.deadline is not None and now > worker.deadline:
                self._kill_worker(
                    worker, "timeout",
                    f"task exceeded its {self.config.task_timeout:.3g}s "
                    f"wall-clock budget",
                )
            elif (
                self.config.heartbeat_timeout is not None
                and now - worker.last_heartbeat > self.config.heartbeat_timeout
            ):
                self._kill_worker(
                    worker, "stalled",
                    f"no heartbeat for {now - worker.last_heartbeat:.3g}s "
                    f"(limit {self.config.heartbeat_timeout:.3g}s)",
                )

    # -- degraded serial path --------------------------------------------
    def _run_degraded(self, state: _TaskState) -> None:
        """In-process execution with the same centralized retry policy."""
        from repro.harness.experiment import run_experiment
        from repro.harness.resilience import current_worker

        while True:
            try:
                result = freeze_result(
                    run_experiment(replace(state.task.experiment, seed=state.seed))
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                before = len(self.queue)
                self._attempt_failed(
                    state, "exception", type(exc).__name__, str(exc),
                    current_worker(),
                    sim_time=getattr(exc, "sim_time", None),
                    component=getattr(exc, "component", None),
                )
                if len(self.queue) > before:  # requeued: retry inline
                    self.queue.pop()
                    continue
                return
            self._finish_success(state, result)
            return

    def _next_spawn_index(self, now: float) -> Optional[int]:
        """Pick the next queue position to spawn; None when all back off.

        Eligibility is the retry backoff (``not_before``).  When the
        result cache is a :class:`SharedResultCache`, eligible cells
        whose key another process currently holds in flight
        (:meth:`SharedResultCache.in_flight`) are passed over in favour
        of unclaimed cells: the remote winner will publish the deferred
        cell, and the pre-spawn recheck in :meth:`_spawn` then turns it
        into a cache hit instead of a duplicate simulation.  When every
        eligible cell is in flight, falls back to the earliest one —
        deferral reorders work, it never starves it.
        """
        probe = isinstance(self.cache, SharedResultCache)
        fallback: Optional[int] = None
        for position, state in enumerate(self.queue):
            if state.not_before > now:
                continue
            if fallback is None:
                fallback = position
            if not probe:
                return position
            key = self.keys[state.index]
            if key is None or not self.cache.in_flight(key):
                if position != fallback:
                    self.report.deferred += 1
                return position
        return fallback

    # -- main loop -------------------------------------------------------
    def run(self) -> List[TaskResult]:
        """Execute every pending task; fill and return the result slots."""
        ctx = multiprocessing.get_context(_start_method())
        try:
            while self.queue or self.running:
                if self.report.degraded:
                    while self.queue:
                        self._run_degraded(self.queue.pop(0))
                    continue
                now = time.monotonic()
                while self.queue and len(self.running) < self.n_jobs:
                    index = self._next_spawn_index(now)
                    if index is None:
                        break
                    if not self._spawn(ctx, self.queue.pop(index)):
                        break
                if self.report.degraded:
                    continue
                if self.running:
                    ready = connection.wait(
                        list(self.running), timeout=_TICK_SECONDS
                    )
                    self._handle_messages(ready)
                    self._check_watchdogs()
                elif self.queue:
                    # Everything is backing off; sleep until the nearest
                    # retry becomes eligible.
                    wake = min(state.not_before for state in self.queue)
                    time.sleep(max(0.0, min(wake - now, _TICK_SECONDS)))
        finally:
            for worker in list(self.running.values()):
                worker.kill()
            self.running.clear()
        if any(slot is None for slot in self.out):  # pragma: no cover
            raise SupervisorError("supervisor finished with unfilled task slots")
        return self.out  # type: ignore[return-value]


#: RunFailure.error_type used for each process-level failure kind.
_PROCESS_ERROR_TYPES = {
    "killed": "WorkerCrashed",
    "timeout": "TaskTimeout",
    "stalled": "WorkerStalled",
}


def execute_supervised(
    tasks: Sequence[SweepTask],
    *,
    jobs: Optional[int] = None,
    on_error: str = "raise",
    config: Optional[SupervisorConfig] = None,
    cache: Optional[ResultCache] = None,
    journal: Optional[Union[ResultJournal, str, os.PathLike]] = None,
    resume: bool = False,
    report: Optional[SupervisorReport] = None,
    tracer: Optional[object] = None,
) -> List[TaskResult]:
    """Run every task under supervision; same contract as ``execute_tasks``.

    Returns one ``(frozen_result, failure)`` pair per task in task order.
    ``journal`` (a :class:`~repro.harness.journal.ResultJournal` or a
    path) makes every completed cell durable as it finishes; with
    ``resume=True`` cells already journaled under the same config + code
    fingerprint are replayed instead of re-executed.  ``report`` (when
    provided) is filled with the run's recovery log and counters.

    With ``on_error="raise"`` the sweep still runs to completion — so the
    journal captures every cell that *can* finish — and then the first
    failure in task order raises
    :class:`~repro.errors.ParallelExecutionError`, exactly like the pool
    executor; ``"capture"`` returns failures in their slots.

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`) receives the
    supervision lifecycle as ``harness`` spans — ``task_start`` per
    spawned attempt (seed + worker identity), ``task_retry`` per
    recovery decision (failure kind, sim-time when known, backoff
    seconds), ``cache_hit``, ``journal_append`` (wall seconds), and
    ``task_done``.  Purely observational: recovery decisions, ordering
    and results are identical with tracing on or off.
    """
    if on_error not in ("raise", "capture"):
        raise ValueError(f"on_error must be 'raise' or 'capture' (got {on_error!r})")
    if resume and journal is None:
        raise ConfigError("resume=True requires a journal")
    config = config or SupervisorConfig()
    report = report if report is not None else SupervisorReport()

    own_journal = journal is not None and not isinstance(journal, ResultJournal)
    journal_obj = ResultJournal(journal) if own_journal else journal

    supervisor = _Supervisor(
        tasks, jobs, on_error, config, cache, journal_obj, report,
        tracer=tracer,
    )
    try:
        supervisor.prefill(resume)
        if supervisor.queue:
            _check_picklable([state.task for state in supervisor.queue])
        out = supervisor.run()
    finally:
        if own_journal and journal_obj is not None:
            journal_obj.close()

    if on_error == "raise":
        for task_result in out:
            failure = task_result[1]
            if failure is not None:
                raise ParallelExecutionError(
                    f"sweep cell failed: {failure}",
                    label=failure.label,
                    error_type=failure.error_type,
                    sim_time=failure.sim_time,
                    component=failure.component,
                )
    return out


def run_supervised_tasks(
    tasks: Sequence[SweepTask],
    *,
    jobs: Optional[int] = None,
    on_error: str = "raise",
    max_retries: int = 1,
    cache: Optional[ResultCache] = None,
    supervisor: Optional[SupervisorConfig] = None,
    journal: Optional[Union[ResultJournal, str, os.PathLike]] = None,
    resume: bool = False,
    tracer: Optional[object] = None,
):
    """Sweep-runner entry point: execute supervised, return (pairs, report).

    ``supervisor`` (a :class:`SupervisorConfig`) wins over ``max_retries``
    when both are given; otherwise a default config is built carrying the
    sweep's ``max_retries`` so supervised and serial sweeps make the same
    number of seed-bump attempts.
    """
    config = (
        supervisor
        if supervisor is not None
        else SupervisorConfig(max_retries=max_retries)
    )
    report = SupervisorReport()
    pairs = execute_supervised(
        tasks,
        jobs=jobs,
        on_error=on_error,
        config=config,
        cache=cache,
        journal=journal,
        resume=resume,
        report=report,
        tracer=tracer,
    )
    return pairs, report
