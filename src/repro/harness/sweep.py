"""Grid sweeps and result tables for the coexistence figures.

Figures 15–18 evaluate every combination of link rate {4, 12, 40, 120,
200} Mb/s and RTT {5, 10, 20, 50, 100} ms; Figures 19–20 sweep flow-count
mixes at a fixed operating point.  This module runs those grids and
renders aligned text tables (the repository's stand-in for the paper's
bar-chart panels).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.cache import ResultCache
from repro.harness.experiment import AqmFactory, ExperimentResult
from repro.harness.resilience import (
    RunFailure,
    format_failure_report,
    run_with_retries,
)
from repro.harness.scenarios import MBPS, coexistence_mix, coexistence_pair

__all__ = [
    "GridCell",
    "GridOutcome",
    "PAPER_LINK_MBPS",
    "PAPER_RTTS_MS",
    "PAPER_FLOW_MIXES",
    "run_coexistence_grid",
    "run_mix_sweep",
    "format_table",
]

#: The paper's evaluation grid (Figures 15–18).
PAPER_LINK_MBPS = (4, 12, 40, 120, 200)
PAPER_RTTS_MS = (5, 10, 20, 50, 100)

#: Figures 19–20's flow-count combinations (A = first class, B = second).
PAPER_FLOW_MIXES = (
    (0, 10),
    (1, 9),
    (2, 8),
    (3, 7),
    (4, 6),
    (5, 5),
    (6, 4),
    (7, 3),
    (8, 2),
    (9, 1),
    (10, 0),
    (1, 1),
    (1, 10),
    (10, 1),
)


@dataclass
class GridCell:
    """One grid point's configuration and completed result."""

    link_mbps: float
    rtt_ms: float
    result: ExperimentResult

    def balance(self, label_a: str, label_b: str) -> float:
        """Rate-balance ratio between two flow classes in this cell."""
        return self.result.balance(label_a, label_b)


class GridOutcome(List[GridCell]):
    """Completed grid cells plus the failure report of any that died.

    A plain list of :class:`GridCell` (so existing code iterating a sweep
    keeps working), with :attr:`failures` carrying one
    :class:`~repro.harness.resilience.RunFailure` per cell that failed
    every retry.  Failed cells are simply absent from the list.
    :attr:`recovery` holds the supervised backend's
    :class:`~repro.harness.supervisor.SupervisorReport` when the sweep
    ran supervised (None otherwise).
    """

    def __init__(self, cells=(), failures=()):
        super().__init__(cells)
        self.failures: List[RunFailure] = list(failures)
        self.recovery = None

    @property
    def complete(self) -> bool:
        """True when every cell completed (no failures captured)."""
        return not self.failures

    def failure_report(self) -> str:
        """Human-readable summary of the captured cell failures."""
        return format_failure_report(self.failures)


def _execute_supervised_tasks(tasks, **kwargs):
    """Route a task list through the supervised backend (lazy import)."""
    from repro.harness.supervisor import run_supervised_tasks

    return run_supervised_tasks(tasks, **kwargs)


def run_coexistence_grid(
    aqm_factory: AqmFactory,
    cc_a: str = "dctcp",
    cc_b: str = "cubic",
    links_mbps: Sequence[float] = PAPER_LINK_MBPS,
    rtts_ms: Sequence[float] = PAPER_RTTS_MS,
    duration: float = 30.0,
    warmup: float = 10.0,
    seed: int = 1,
    duration_for: Optional[Callable[[float, float], float]] = None,
    on_error: str = "raise",
    max_retries: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    supervised: bool = False,
    supervisor=None,
    journal=None,
    resume: bool = False,
    scheduler: str = "wheel",
    tracer=None,
) -> GridOutcome:
    """Run the Figure 15–18 grid; one long-running flow per class per cell.

    ``duration_for(link_mbps, rtt_ms)`` may override the run length per
    cell — benchmarks use it to keep high-rate cells affordable.

    ``on_error`` selects the failure policy: ``"raise"`` (default)
    propagates the first cell failure as before; ``"capture"`` retries the
    cell with seed-bumped reruns (``max_retries`` attempts beyond the
    first) and, if it still fails, records a structured
    :class:`~repro.harness.resilience.RunFailure` on the returned
    outcome's ``failures`` and moves on to the next cell, so a 25-cell
    sweep never dies on cell 23.

    ``jobs`` fans the cells out over a process pool (``0``/``None``-vs-int
    semantics per :func:`~repro.harness.parallel.resolve_jobs`; ``None``
    keeps the serial path) and ``cache`` consults/fills an on-disk result
    cache.  Either option makes the cells' results come back as
    :class:`~repro.harness.frozen.FrozenResult` snapshots — same metric
    API, same numbers, but detached from the live testbed.  Cell seeds and
    ordering are identical to the serial path, so a fixed seed gives
    bit-identical outcomes at any ``jobs``.

    ``supervised=True`` (implied by ``supervisor``, ``journal`` or
    ``resume``) routes execution through the watchdogged backend in
    :mod:`repro.harness.supervisor`: per-task timeouts, heartbeat
    monitoring, centralized retry with backoff, and — when ``journal`` (a
    :class:`~repro.harness.journal.ResultJournal` or path) is given — a
    crash-safe record of every completed cell.  ``resume=True`` replays
    journaled cells instead of re-simulating them; an
    interrupted-then-resumed sweep returns bit-identical results to an
    uninterrupted one.  The outcome's ``recovery`` attribute carries the
    backend's :class:`~repro.harness.supervisor.SupervisorReport`.

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`) observes the sweep:
    harness lifecycle spans from whichever backend runs the cells, plus
    per-cell AQM/engine events on in-process execution paths.  Tracing
    never changes results — digests are bit-exact with it on or off.
    """
    from repro.harness.experiment import run_experiment

    if on_error not in ("raise", "capture"):
        raise ValueError(f"on_error must be 'raise' or 'capture' (got {on_error!r})")
    cells = []
    for link in links_mbps:
        for rtt in rtts_ms:
            d = duration if duration_for is None else duration_for(link, rtt)
            exp = coexistence_pair(
                aqm_factory,
                cc_a=cc_a,
                cc_b=cc_b,
                capacity_bps=link * MBPS,
                rtt=rtt / 1000.0,
                duration=d,
                warmup=min(warmup, d / 2),
                seed=seed,
            )
            if scheduler != exp.scheduler:
                # A/B parity runs (CI's heap-vs-wheel digest gate) swap
                # the engine backend without touching the cell config.
                exp = dataclasses.replace(exp, scheduler=scheduler)
            cells.append((link, rtt, exp))

    outcome = GridOutcome()
    use_supervised = supervised or supervisor is not None \
        or journal is not None or resume
    if use_supervised or cache is not None or (jobs is not None and jobs != 1):
        from repro.harness.parallel import SweepTask, execute_tasks

        tasks = [
            SweepTask(f"cell link={link}Mb/s rtt={rtt}ms", exp)
            for link, rtt, exp in cells
        ]
        if use_supervised:
            pairs, outcome.recovery = _execute_supervised_tasks(
                tasks, jobs=jobs, on_error=on_error, max_retries=max_retries,
                cache=cache, supervisor=supervisor, journal=journal,
                resume=resume, tracer=tracer,
            )
        else:
            pairs = execute_tasks(
                tasks, jobs=jobs, on_error=on_error,
                max_retries=max_retries, cache=cache, tracer=tracer,
            )
        for (link, rtt, _exp), (result, failure) in zip(cells, pairs):
            if result is not None:
                outcome.append(GridCell(link, rtt, result))
            else:
                outcome.failures.append(failure)
        return outcome

    for link, rtt, exp in cells:
        if on_error == "raise":
            outcome.append(GridCell(link, rtt, run_experiment(exp, tracer=tracer)))
            continue
        result, failure = run_with_retries(
            exp, label=f"cell link={link}Mb/s rtt={rtt}ms",
            max_retries=max_retries,
        )
        if result is not None:
            outcome.append(GridCell(link, rtt, result))
        else:
            outcome.failures.append(failure)
    return outcome


def run_mix_sweep(
    aqm_factory: AqmFactory,
    cc_a: str = "dctcp",
    cc_b: str = "cubic",
    mixes: Sequence[Tuple[int, int]] = PAPER_FLOW_MIXES,
    capacity_mbps: float = 40.0,
    rtt_ms: float = 10.0,
    duration: float = 30.0,
    warmup: float = 10.0,
    seed: int = 1,
    on_error: str = "raise",
    max_retries: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    supervised: bool = False,
    supervisor=None,
    journal=None,
    resume: bool = False,
    tracer=None,
) -> Dict[Tuple[int, int], ExperimentResult]:
    """Run the Figure 19–20 flow-mix sweep at one operating point.

    With ``on_error="capture"``, failing mixes are retried on bumped
    seeds and then skipped; the returned dict gains a ``failures``
    attribute (a :class:`~repro.harness.resilience.RunFailure` list).

    ``jobs``/``cache`` behave as in :func:`run_coexistence_grid`:
    process-pool fan-out and/or on-disk result caching, with frozen
    results and unchanged per-mix seeds and ordering.
    ``supervised``/``supervisor``/``journal``/``resume`` select the
    watchdogged, journal-backed backend exactly as in
    :func:`run_coexistence_grid`; the returned dict then carries the
    :class:`~repro.harness.supervisor.SupervisorReport` as ``recovery``.
    ``tracer`` observes the sweep exactly as in
    :func:`run_coexistence_grid`, without changing any result.
    """
    from repro.harness.experiment import run_experiment

    if on_error not in ("raise", "capture"):
        raise ValueError(f"on_error must be 'raise' or 'capture' (got {on_error!r})")
    entries = []
    for n_a, n_b in mixes:
        exp = coexistence_mix(
            aqm_factory,
            n_a,
            n_b,
            cc_a=cc_a,
            cc_b=cc_b,
            capacity_bps=capacity_mbps * MBPS,
            rtt=rtt_ms / 1000.0,
            duration=duration,
            warmup=warmup,
            seed=seed,
        )
        entries.append((n_a, n_b, exp))

    results = _MixResults()
    use_supervised = supervised or supervisor is not None \
        or journal is not None or resume
    if use_supervised or cache is not None or (jobs is not None and jobs != 1):
        from repro.harness.parallel import SweepTask, execute_tasks

        tasks = [
            SweepTask(f"mix {cc_a}x{n_a} vs {cc_b}x{n_b}", exp)
            for n_a, n_b, exp in entries
        ]
        if use_supervised:
            pairs, results.recovery = _execute_supervised_tasks(
                tasks, jobs=jobs, on_error=on_error, max_retries=max_retries,
                cache=cache, supervisor=supervisor, journal=journal,
                resume=resume, tracer=tracer,
            )
        else:
            pairs = execute_tasks(
                tasks, jobs=jobs, on_error=on_error,
                max_retries=max_retries, cache=cache, tracer=tracer,
            )
        for (n_a, n_b, _exp), (result, failure) in zip(entries, pairs):
            if result is not None:
                results[(n_a, n_b)] = result
            else:
                results.failures.append(failure)
        return results

    for n_a, n_b, exp in entries:
        if on_error == "raise":
            results[(n_a, n_b)] = run_experiment(exp, tracer=tracer)
            continue
        result, failure = run_with_retries(
            exp, label=f"mix {cc_a}x{n_a} vs {cc_b}x{n_b}", max_retries=max_retries
        )
        if result is not None:
            results[(n_a, n_b)] = result
        else:
            results.failures.append(failure)
    return results


class _MixResults(Dict[Tuple[int, int], ExperimentResult]):
    """Mix-sweep result dict with an attached failure list."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.failures: List[RunFailure] = []
        self.recovery = None


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table (the benches' figure stand-in)."""
    cols = [
        [str(h)] + [_fmt(row[i]) for row in rows] for i, h in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in col) for col in cols]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(_fmt(cell).rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
