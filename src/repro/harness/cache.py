"""On-disk experiment result cache.

Re-running a figure script or benchmark repeats dozens of simulations
whose inputs have not changed.  This module keys each experiment by a
content hash of its **full configuration** plus a **fingerprint of the
simulator's source code**, and stores the frozen result
(:class:`~repro.harness.frozen.FrozenResult`) as a pickle under that key —
so a re-run skips straight to the read-outs, while *any* code edit or
config change (seed, duration, a fault schedule, one AQM gain) misses
cleanly and re-simulates.

Keying
------
:func:`experiment_cache_key` canonicalises every field of
:class:`~repro.harness.experiment.Experiment` into a text description and
SHA-256 hashes it together with :func:`code_fingerprint` (a hash over the
``repro`` package's ``.py`` sources) and a schema version.  The AQM
factory is the one field that is code, not data; named factories
(:class:`~repro.harness.factories.NamedAqmFactory`) describe themselves
via ``cache_key()``, plain module-level functions are described by their
qualified name, and anything else (lambdas, closures) makes the
experiment **uncacheable** — the key is ``None`` and the runners simply
simulate as before.

Layout
------
``<root>/<key[:2]>/<key>.pkl``, written atomically (temp file + rename)
so a crashed run never leaves a truncated entry; unreadable entries are
treated as misses and deleted.  :class:`SharedResultCache` adds
``<root>/locks/<key>.lock`` (advisory per-key ``flock`` files for
cross-process single-flight) and ``<root>/events.log`` (append-only
compute/wait decision log); both are metadata only — the entry layout is
unchanged and fully interchangeable with the plain cache.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import time
import types
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Protocol, Tuple

try:  # file locks are POSIX-only; the shared cache degrades without them
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.harness.experiment import Experiment
from repro.harness.frozen import FrozenResult


class _TracerLike(Protocol):
    """The only slice of :class:`repro.obs.trace.Tracer` the cache uses
    (duck-typed; the harness never imports the observability layer)."""

    def emit(
        self, category: str, event: str, t: float, fields: Mapping[str, object]
    ) -> None:
        ...


__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "code_fingerprint",
    "describe_aqm_factory",
    "experiment_cache_key",
    "CacheStats",
    "ResultCache",
    "SharedCacheStats",
    "SharedResultCache",
]

#: Bumped whenever the frozen-result layout or keying scheme changes.
CACHE_SCHEMA = 1

_log = logging.getLogger("repro.harness.cache")

#: Where the CLI caches by default (overridable via $REPRO_CACHE_DIR).
DEFAULT_CACHE_DIR = os.environ.get(
    "REPRO_CACHE_DIR", os.path.join("~", ".cache", "repro-pi2")
)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over the ``repro`` package's Python sources.

    Simulation results are a function of the code as much as of the
    config; folding this into every cache key makes each edit to the
    simulator invalidate the whole cache, which is exactly the safe
    default for a research codebase.  Computed once per process.
    """
    import repro

    package_dir = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(str(path.relative_to(package_dir)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def describe_aqm_factory(factory: object) -> Optional[str]:
    """Stable textual identity of an AQM factory, or None if it has none.

    Priority: an explicit ``cache_key()`` method (named factories), then
    a plain module-level function's qualified name.  Closures and lambdas
    return None — their configuration is invisible, so caching them would
    risk silently serving results for a *different* configuration.
    """
    key = getattr(factory, "cache_key", None)
    if callable(key):
        return str(key())
    if isinstance(factory, types.FunctionType):
        if factory.__closure__ is None and "<" not in factory.__qualname__:
            return f"{factory.__module__}.{factory.__qualname__}"
    return None


def experiment_cache_key(experiment: Experiment) -> Optional[str]:
    """Content hash of one experiment, or None when it is uncacheable."""
    aqm = describe_aqm_factory(experiment.aqm_factory)
    if aqm is None:
        return None
    parts = [
        f"schema={CACHE_SCHEMA}",
        f"code={code_fingerprint()}",
        f"aqm={aqm}",
        f"capacity_bps={experiment.capacity_bps!r}",
        f"duration={experiment.duration!r}",
        f"warmup={experiment.warmup!r}",
        f"buffer_packets={experiment.buffer_packets!r}",
        f"seed={experiment.seed!r}",
        f"sample_period={experiment.sample_period!r}",
        f"record_sojourns={experiment.record_sojourns!r}",
        f"validate={experiment.validate!r}",
        f"link_batching={experiment.link_batching!r}",
        f"scheduler={experiment.scheduler!r}",
        f"max_events={experiment.max_events!r}",
        f"max_wall_seconds={experiment.max_wall_seconds!r}",
        f"flows={[repr(group) for group in experiment.flows]!r}",
        f"udp={[repr(group) for group in experiment.udp]!r}",
        f"capacity_schedule={list(experiment.capacity_schedule)!r}",
        f"faults={[repr(fault) for fault in experiment.faults]!r}",
    ]
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance.

    ``corrupt`` counts entries that existed on disk but failed to load —
    each one is logged and treated as a miss (re-simulated), never served.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"hits={self.hits} misses={self.misses} "
            f"stores={self.stores} corrupt={self.corrupt}"
        )


class ResultCache:
    """Pickle-file store of frozen results under a content-hash key."""

    def __init__(self, root: os.PathLike | str = DEFAULT_CACHE_DIR):
        self.root = Path(root).expanduser()
        self.stats = CacheStats()
        #: Optional span sink (:class:`~repro.obs.trace.Tracer`); the
        #: cache only emits into it (``cache_wait`` spans), never reads.
        self._tracer: Optional[_TracerLike] = None

    def set_tracer(self, tracer: "Optional[_TracerLike]") -> None:
        """Attach a tracer for ``harness`` spans (None detaches)."""
        self._tracer = tracer

    def register_metrics(self, registry: object) -> None:
        """Register the cache's counters under the ``cache.`` prefix.

        ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry`;
        the provider reports this instance's end-of-run stats (plus the
        single-flight tallies for :class:`SharedResultCache`).
        """
        registry.register_provider("cache", self._metrics_snapshot)

    def _metrics_snapshot(self) -> Dict[str, int]:
        """Flat metric values straight off the stats dataclass."""
        return {name: int(value) for name, value in vars(self.stats).items()}

    # -- keying ----------------------------------------------------------
    def key_for(self, experiment: Experiment) -> Optional[str]:
        """Delegates to :func:`experiment_cache_key`."""
        return experiment_cache_key(experiment)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- access ----------------------------------------------------------
    def get(self, key: str) -> Optional[FrozenResult]:
        """Look up one entry; corrupt entries are logged and recomputed.

        A corrupt or unreadable entry (truncated write, schema drift,
        version skew, wrong object type) is never served: it is logged at
        WARNING level, counted in ``stats.corrupt``, removed from disk,
        and reported as a miss so the caller simply re-simulates.
        """
        result = self._load(key)
        if result is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def _load(self, key: str) -> Optional[FrozenResult]:
        """Uncounted load: the shared cache's waiters poll through this.

        Corrupt entries are still logged, counted in ``stats.corrupt``
        and pruned; only the hit/miss tallies are left to :meth:`get`, so
        a polling waiter doesn't inflate them once per poll interval.
        """
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception as exc:
            self._drop_corrupt(path, f"{type(exc).__name__}: {exc}")
            return None
        if not isinstance(result, FrozenResult):
            self._drop_corrupt(
                path, f"expected FrozenResult, found {type(result).__name__}"
            )
            return None
        return result

    def _drop_corrupt(self, path: Path, reason: str) -> None:
        """Log, count and delete one unusable entry; callers see a miss."""
        _log.warning("corrupt cache entry %s (%s): recomputing", path, reason)
        self.stats.corrupt += 1
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, key: str, result: FrozenResult) -> None:
        """Store one entry atomically (temp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)
        finally:
            if tmp.exists():  # replace failed midway
                try:
                    tmp.unlink()
                except OSError:
                    pass
        self.stats.stores += 1

    # -- maintenance -----------------------------------------------------
    def verify(self, prune: bool = True) -> Tuple[int, List[str]]:
        """Scan every entry; return ``(ok_count, corrupt_descriptions)``.

        Each entry is fully unpickled and type-checked — the same
        validation a :meth:`get` performs, applied to the whole store.
        With ``prune=True`` (default) corrupt entries are deleted (and
        counted in ``stats.corrupt``); with ``prune=False`` they are only
        reported, so a read-only inspection never mutates the store.
        """
        ok = 0
        corrupt: List[str] = []
        if not self.root.exists():
            return ok, corrupt
        for path in sorted(self.root.glob("*/*.pkl")):
            try:
                with path.open("rb") as handle:
                    result = pickle.load(handle)
            except Exception as exc:
                reason = f"{type(exc).__name__}: {exc}"
            else:
                if isinstance(result, FrozenResult):
                    ok += 1
                    continue
                reason = f"expected FrozenResult, found {type(result).__name__}"
            corrupt.append(f"{path}: {reason}")
            if prune:
                _log.warning("corrupt cache entry %s (%s): pruned", path, reason)
                self.stats.corrupt += 1
                try:
                    path.unlink()
                except OSError:
                    pass
        return ok, corrupt

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        # repro: allow[ORD] order-independent count; sorting would only add IO
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.exists():
            for path in sorted(self.root.glob("*/*.pkl")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ResultCache {self.root} entries={len(self)} {self.stats}>"


@dataclass
class SharedCacheStats(CacheStats):
    """Counters for one :class:`SharedResultCache` instance.

    Extends the plain hit/miss/store tallies with the single-flight
    outcomes: ``computes`` (this process won the per-key lock and ran
    the simulation) and ``waits`` (another process held the lock, so
    this one polled for its result instead of duplicating the work).
    """

    waits: int = 0
    computes: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{CacheStats.__str__(self)} "
            f"computes={self.computes} waits={self.waits}"
        )


class SharedResultCache(ResultCache):
    """Cross-process single-flight wrapper over :class:`ResultCache`.

    N workers asked for the same :func:`experiment_cache_key` at the same
    moment (repeated-figure workloads, ``repro figure`` over overlapping
    grids, parallel sweeps that share cells) should simulate it **once**.
    :meth:`fetch_or_compute` takes a per-key ``flock`` under
    ``<root>/locks/``: the winner simulates and publishes the entry, the
    others sleep-poll until the entry appears and share it.  Everything
    is advisory and crash-safe — a lock dies with its holder's file
    descriptor, so a crashed winner simply promotes the next waiter to
    winner, and the store layout stays identical to the plain cache
    (entries remain valid for, and visible to, non-shared readers).

    Each process tallies its own :class:`SharedCacheStats`; the
    cross-process picture comes from an append-only event log
    (``<root>/events.log``, one ``compute``/``wait`` line per decision,
    written with ``O_APPEND`` so concurrent writers never interleave),
    summarised by :meth:`event_counts` — that is what the benchmarks
    assert single-flight dedup on.
    """

    #: How long a waiter sleeps between polls of the winner's entry.
    LOCK_POLL_INTERVAL = 0.05
    #: Give up waiting after this long and simulate anyway — a stuck
    #: winner (e.g. SIGSTOP'd) must never deadlock the whole sweep.
    LOCK_TIMEOUT = 600.0

    def __init__(self, root: os.PathLike | str = DEFAULT_CACHE_DIR):
        super().__init__(root)
        self.stats: SharedCacheStats = SharedCacheStats()

    def _lock_path(self, key: str) -> Path:
        return self.root / "locks" / f"{key}.lock"

    def _events_path(self) -> Path:
        return self.root / "events.log"

    def _log_event(self, kind: str, key: str) -> None:
        """Append one decision record; O_APPEND keeps writers atomic."""
        line = f"{kind} {key} {os.getpid()}\n".encode()
        try:
            fd = os.open(
                self._events_path(), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
        except OSError:  # pragma: no cover - event log is best-effort
            pass

    def event_counts(self) -> Dict[str, int]:
        """Aggregate ``compute``/``wait`` decisions across all processes."""
        counts: Dict[str, int] = {"compute": 0, "wait": 0}
        try:
            text = self._events_path().read_text()
        except OSError:
            return counts
        for line in text.splitlines():
            kind = line.split(" ", 1)[0]
            if kind in counts:
                counts[kind] += 1
        return counts

    def clear_events(self) -> None:
        """Reset the event log (benchmarks measure one workload at a time)."""
        try:
            self._events_path().unlink()
        except OSError:
            pass

    def in_flight(self, key: str) -> bool:
        """True when another process currently holds ``key``'s compute lock.

        A non-blocking scheduling probe: the per-key ``flock`` is tried
        and — if it was free — released immediately, so the probe never
        waits and never changes which process wins an ongoing
        computation.  Schedulers use it to submit in-flight cells *last*:
        a fleet regenerating the same figure then spends its workers on
        cells nobody else has claimed yet, and by the time the deferred
        cells come up the winner has usually published and they resolve
        as plain cache hits.  The answer is advisory (the lock state can
        change the instant this returns), which is fine — a stale answer
        costs at worst one ordinary wait in :meth:`fetch_or_compute`.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return False
        lock_path = self._lock_path(key)
        try:
            fd = os.open(lock_path, os.O_WRONLY)
        except OSError:
            # No lock file yet (or unreadable): nobody can be holding it.
            return False
        try:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                return True
            fcntl.flock(fd, fcntl.LOCK_UN)
            return False
        finally:
            os.close(fd)

    def fetch_or_compute(
        self, key: str, compute: Callable[[], Optional[FrozenResult]]
    ) -> Optional[FrozenResult]:
        """Return the entry for ``key``, simulating it at most once fleet-wide.

        ``compute`` must return the :class:`FrozenResult` to publish, or
        ``None`` for a failed run — failures are never cached, and the
        lock is released so another process can retry.  The fast path is
        one counted :meth:`get`; past it, the per-key lock decides who
        simulates and who waits.  Without ``fcntl`` (non-POSIX) every
        process just computes, preserving correctness without dedup.
        """
        result = self.get(key)
        if result is not None:
            return result
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            self.stats.computes += 1
            self._log_event("compute", key)
            result = compute()
            if result is not None:
                self.put(key, result)
            return result
        lock_path = self._lock_path(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock_path, os.O_WRONLY | os.O_CREAT, 0o644)
        try:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                return self._wait_for(key, fd, compute)
            # Lock won.  Double-check: the previous holder may have
            # published the entry between our miss and our acquisition.
            result = self._load(key)
            if result is not None:
                return result
            self.stats.computes += 1
            self._log_event("compute", key)
            result = compute()
            if result is not None:
                self.put(key, result)
            return result
        finally:
            os.close(fd)  # also releases the flock if we hold it

    def _wait_for(
        self, key: str, fd: int, compute: Callable[[], Optional[FrozenResult]]
    ) -> Optional[FrozenResult]:
        """Poll for the winner's entry; inherit the lock if it dies.

        When a tracer is attached (:meth:`ResultCache.set_tracer`) the
        wait is reported as one ``cache_wait`` harness span carrying the
        polled wall-clock ``seconds`` and whether the entry was shared
        (``ok=True``) or this process inherited the computation.
        """
        self.stats.waits += 1
        self._log_event("wait", key)
        started = time.monotonic()
        deadline = started + self.LOCK_TIMEOUT
        while time.monotonic() < deadline:
            time.sleep(self.LOCK_POLL_INTERVAL)
            result = self._load(key)
            if result is not None:
                if self._tracer is not None:
                    self._tracer.emit("harness", "cache_wait", 0.0, {
                        "key": key[:12],
                        "ok": True,
                        "seconds": time.monotonic() - started,
                    })
                return result
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                continue
            # The winner released without publishing (failed or crashed
            # run): this process inherits the computation.
            result = self._load(key)
            if result is not None:
                return result
            if self._tracer is not None:
                self._tracer.emit("harness", "cache_wait", 0.0, {
                    "key": key[:12],
                    "ok": False,
                    "seconds": time.monotonic() - started,
                })
            self.stats.computes += 1
            self._log_event("compute", key)
            result = compute()
            if result is not None:
                self.put(key, result)
            return result
        _log.warning(
            "shared-cache lock for %s held past %.0fs; computing anyway",
            key,
            self.LOCK_TIMEOUT,
        )
        self.stats.computes += 1
        self._log_event("compute", key)
        result = compute()
        if result is not None:
            self.put(key, result)
        return result
