"""On-disk experiment result cache.

Re-running a figure script or benchmark repeats dozens of simulations
whose inputs have not changed.  This module keys each experiment by a
content hash of its **full configuration** plus a **fingerprint of the
simulator's source code**, and stores the frozen result
(:class:`~repro.harness.frozen.FrozenResult`) as a pickle under that key —
so a re-run skips straight to the read-outs, while *any* code edit or
config change (seed, duration, a fault schedule, one AQM gain) misses
cleanly and re-simulates.

Keying
------
:func:`experiment_cache_key` canonicalises every field of
:class:`~repro.harness.experiment.Experiment` into a text description and
SHA-256 hashes it together with :func:`code_fingerprint` (a hash over the
``repro`` package's ``.py`` sources) and a schema version.  The AQM
factory is the one field that is code, not data; named factories
(:class:`~repro.harness.factories.NamedAqmFactory`) describe themselves
via ``cache_key()``, plain module-level functions are described by their
qualified name, and anything else (lambdas, closures) makes the
experiment **uncacheable** — the key is ``None`` and the runners simply
simulate as before.

Layout
------
``<root>/<key[:2]>/<key>.pkl``, written atomically (temp file + rename)
so a crashed run never leaves a truncated entry; unreadable entries are
treated as misses and deleted.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import types
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import List, Optional, Tuple

from repro.harness.experiment import Experiment
from repro.harness.frozen import FrozenResult

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "code_fingerprint",
    "describe_aqm_factory",
    "experiment_cache_key",
    "CacheStats",
    "ResultCache",
]

#: Bumped whenever the frozen-result layout or keying scheme changes.
CACHE_SCHEMA = 1

_log = logging.getLogger("repro.harness.cache")

#: Where the CLI caches by default (overridable via $REPRO_CACHE_DIR).
DEFAULT_CACHE_DIR = os.environ.get(
    "REPRO_CACHE_DIR", os.path.join("~", ".cache", "repro-pi2")
)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over the ``repro`` package's Python sources.

    Simulation results are a function of the code as much as of the
    config; folding this into every cache key makes each edit to the
    simulator invalidate the whole cache, which is exactly the safe
    default for a research codebase.  Computed once per process.
    """
    import repro

    package_dir = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(str(path.relative_to(package_dir)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def describe_aqm_factory(factory) -> Optional[str]:
    """Stable textual identity of an AQM factory, or None if it has none.

    Priority: an explicit ``cache_key()`` method (named factories), then
    a plain module-level function's qualified name.  Closures and lambdas
    return None — their configuration is invisible, so caching them would
    risk silently serving results for a *different* configuration.
    """
    key = getattr(factory, "cache_key", None)
    if callable(key):
        return str(key())
    if isinstance(factory, types.FunctionType):
        if factory.__closure__ is None and "<" not in factory.__qualname__:
            return f"{factory.__module__}.{factory.__qualname__}"
    return None


def experiment_cache_key(experiment: Experiment) -> Optional[str]:
    """Content hash of one experiment, or None when it is uncacheable."""
    aqm = describe_aqm_factory(experiment.aqm_factory)
    if aqm is None:
        return None
    parts = [
        f"schema={CACHE_SCHEMA}",
        f"code={code_fingerprint()}",
        f"aqm={aqm}",
        f"capacity_bps={experiment.capacity_bps!r}",
        f"duration={experiment.duration!r}",
        f"warmup={experiment.warmup!r}",
        f"buffer_packets={experiment.buffer_packets!r}",
        f"seed={experiment.seed!r}",
        f"sample_period={experiment.sample_period!r}",
        f"record_sojourns={experiment.record_sojourns!r}",
        f"validate={experiment.validate!r}",
        f"link_batching={experiment.link_batching!r}",
        f"max_events={experiment.max_events!r}",
        f"max_wall_seconds={experiment.max_wall_seconds!r}",
        f"flows={[repr(group) for group in experiment.flows]!r}",
        f"udp={[repr(group) for group in experiment.udp]!r}",
        f"capacity_schedule={list(experiment.capacity_schedule)!r}",
        f"faults={[repr(fault) for fault in experiment.faults]!r}",
    ]
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance.

    ``corrupt`` counts entries that existed on disk but failed to load —
    each one is logged and treated as a miss (re-simulated), never served.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"hits={self.hits} misses={self.misses} "
            f"stores={self.stores} corrupt={self.corrupt}"
        )


class ResultCache:
    """Pickle-file store of frozen results under a content-hash key."""

    def __init__(self, root: os.PathLike | str = DEFAULT_CACHE_DIR):
        self.root = Path(root).expanduser()
        self.stats = CacheStats()

    # -- keying ----------------------------------------------------------
    def key_for(self, experiment: Experiment) -> Optional[str]:
        """Delegates to :func:`experiment_cache_key`."""
        return experiment_cache_key(experiment)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- access ----------------------------------------------------------
    def get(self, key: str) -> Optional[FrozenResult]:
        """Look up one entry; corrupt entries are logged and recomputed.

        A corrupt or unreadable entry (truncated write, schema drift,
        version skew, wrong object type) is never served: it is logged at
        WARNING level, counted in ``stats.corrupt``, removed from disk,
        and reported as a miss so the caller simply re-simulates.
        """
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception as exc:
            self._drop_corrupt(path, f"{type(exc).__name__}: {exc}")
            return None
        if not isinstance(result, FrozenResult):
            self._drop_corrupt(
                path, f"expected FrozenResult, found {type(result).__name__}"
            )
            return None
        self.stats.hits += 1
        return result

    def _drop_corrupt(self, path: Path, reason: str) -> None:
        """Log, count and delete one unusable entry; callers see a miss."""
        _log.warning("corrupt cache entry %s (%s): recomputing", path, reason)
        self.stats.corrupt += 1
        self.stats.misses += 1
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, key: str, result: FrozenResult) -> None:
        """Store one entry atomically (temp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)
        finally:
            if tmp.exists():  # replace failed midway
                try:
                    tmp.unlink()
                except OSError:
                    pass
        self.stats.stores += 1

    # -- maintenance -----------------------------------------------------
    def verify(self, prune: bool = True) -> Tuple[int, List[str]]:
        """Scan every entry; return ``(ok_count, corrupt_descriptions)``.

        Each entry is fully unpickled and type-checked — the same
        validation a :meth:`get` performs, applied to the whole store.
        With ``prune=True`` (default) corrupt entries are deleted (and
        counted in ``stats.corrupt``); with ``prune=False`` they are only
        reported, so a read-only inspection never mutates the store.
        """
        ok = 0
        corrupt: List[str] = []
        if not self.root.exists():
            return ok, corrupt
        for path in sorted(self.root.glob("*/*.pkl")):
            try:
                with path.open("rb") as handle:
                    result = pickle.load(handle)
            except Exception as exc:
                reason = f"{type(exc).__name__}: {exc}"
            else:
                if isinstance(result, FrozenResult):
                    ok += 1
                    continue
                reason = f"expected FrozenResult, found {type(result).__name__}"
            corrupt.append(f"{path}: {reason}")
            if prune:
                _log.warning("corrupt cache entry %s (%s): pruned", path, reason)
                self.stats.corrupt += 1
                try:
                    path.unlink()
                except OSError:
                    pass
        return ok, corrupt

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        # repro: allow[ORD] order-independent count; sorting would only add IO
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.exists():
            for path in sorted(self.root.glob("*/*.pkl")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ResultCache {self.root} entries={len(self)} {self.stats}>"
