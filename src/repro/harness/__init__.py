"""Evaluation harness: dumbbell topology, experiments, scenarios, sweeps."""

from repro.harness.cache import ResultCache, experiment_cache_key
from repro.harness.experiment import (
    Experiment,
    ExperimentResult,
    FlowGroup,
    ResultMetrics,
    UdpGroup,
    run_experiment,
)
from repro.harness.factories import (
    FACTORIES,
    NamedAqmFactory,
    bare_pie_factory,
    coupled_factory,
    pi2_factory,
    pi_factory,
    pie_factory,
    taildrop_factory,
)
from repro.harness.frozen import FrozenResult, freeze_result
from repro.harness.parallel import SweepTask, execute_tasks, resolve_jobs
from repro.harness.repeat import (
    MetricEstimate,
    RepeatOutcome,
    compare_metric,
    repeat_experiment,
)
from repro.harness.resilience import (
    RunFailure,
    format_failure_report,
    run_with_retries,
)
from repro.harness.scenarios import (
    MBPS,
    PAPER_EXPECTATIONS,
    coexistence_mix,
    coexistence_pair,
    heavy_tcp,
    light_tcp,
    tcp_plus_udp,
    varying_capacity,
    varying_intensity,
)
from repro.harness.sweep import (
    PAPER_FLOW_MIXES,
    PAPER_LINK_MBPS,
    PAPER_RTTS_MS,
    GridCell,
    GridOutcome,
    format_table,
    run_coexistence_grid,
    run_mix_sweep,
)
from repro.harness.topology import Dumbbell

__all__ = [
    "Experiment",
    "ExperimentResult",
    "FlowGroup",
    "UdpGroup",
    "run_experiment",
    "repeat_experiment",
    "compare_metric",
    "MetricEstimate",
    "RepeatOutcome",
    "RunFailure",
    "run_with_retries",
    "format_failure_report",
    "Dumbbell",
    "MBPS",
    "PAPER_EXPECTATIONS",
    "light_tcp",
    "heavy_tcp",
    "tcp_plus_udp",
    "varying_intensity",
    "varying_capacity",
    "coexistence_pair",
    "coexistence_mix",
    "GridCell",
    "GridOutcome",
    "run_coexistence_grid",
    "run_mix_sweep",
    "format_table",
    "PAPER_LINK_MBPS",
    "PAPER_RTTS_MS",
    "PAPER_FLOW_MIXES",
    "pie_factory",
    "bare_pie_factory",
    "pi_factory",
    "pi2_factory",
    "coupled_factory",
    "taildrop_factory",
    "FACTORIES",
    "NamedAqmFactory",
    "ResultMetrics",
    "FrozenResult",
    "freeze_result",
    "ResultCache",
    "experiment_cache_key",
    "SweepTask",
    "execute_tasks",
    "resolve_jobs",
]
