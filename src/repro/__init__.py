"""repro — reproduction of De Schepper et al., *PI2: A Linearized AQM for
both Classic and Scalable TCP* (CoNEXT 2016).

The package provides:

* :mod:`repro.core` — the paper's contribution: the PI2 AQM (linear PI on
  a pseudo-probability, squared output for Classic TCP) and the coupled
  PI+PI2 single-queue AQM for Classic/Scalable coexistence.
* :mod:`repro.aqm` — the baselines it is evaluated against (PIE with all
  Linux heuristics, bare-PIE, basic PI, RED, Curvy RED, CoDel) plus the
  DualQ Coupled extension.
* :mod:`repro.sim`, :mod:`repro.net`, :mod:`repro.tcp`,
  :mod:`repro.traffic` — the discrete-event simulator, bottleneck
  queue/link model, TCP congestion controls (Reno, Cubic/CReno, DCTCP,
  ECN-Cubic) and traffic generators standing in for the paper's Linux
  testbed.
* :mod:`repro.analysis` — Appendix A's steady-state laws and Appendix B's
  fluid-model stability analysis (Bode margins).
* :mod:`repro.harness`, :mod:`repro.metrics` — the evaluation harness
  reproducing every figure of Section 6.

Quickstart::

    from repro.harness import light_tcp, pi2_factory, run_experiment

    result = run_experiment(light_tcp(pi2_factory(), duration=30.0))
    print(result.sojourn_summary())           # per-packet queue delay
    print(result.mean_utilization())
"""

from repro.core import CoupledPi2Aqm, Pi2Aqm
from repro.errors import (
    CallbackError,
    ConfigError,
    ControllerDivergence,
    InvariantViolation,
    ReproError,
    SimulationError,
    WatchdogExceeded,
)

__version__ = "1.0.0"

__all__ = [
    "Pi2Aqm",
    "CoupledPi2Aqm",
    "ReproError",
    "ConfigError",
    "SimulationError",
    "CallbackError",
    "WatchdogExceeded",
    "InvariantViolation",
    "ControllerDivergence",
    "__version__",
]
