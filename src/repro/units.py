"""Unit/domain aliases for the quantities the PI2 reproduction computes.

PI2's correctness hinges on quantities with strict domains and units: the
α/β gains are frequencies in 1/s (Briscoe, "PI² Parameters",
arXiv:2107.01003), the target delay τ₀ and update interval T are in
seconds, link capacities are in bit/s, queue backlogs are counted in
packets, bytes or bits, and the controller outputs are probabilities in
[0, 1] whose squared/coupled forms must stay clamp-dominated.  A
milliseconds-vs-seconds mixup or a packets-vs-bytes backlog confusion
produces a run that *completes* — it is just quietly wrong by orders of
magnitude.

The aliases below are **transparent type aliases** (each one *is*
``float`` at runtime and for mypy): annotating a signature with them
costs nothing and changes nothing — ``Seconds(0.02)`` is ``float(0.02)``,
bit-identical to the bare literal, so adopting the annotations is
digest-preserving by construction.  Dimensional correctness is enforced
syntactically by the ``UNIT`` static-analysis rule
(:mod:`repro.analysis.static.rules.unit`, ``repro check``), which reads
these names out of annotations and flags

* arithmetic mixing two different dimensions (``Seconds + Packets``), and
* bare numeric literals flowing into unit-annotated parameters (pass
  ``Seconds(0.02)``/``PerSecond(0.3125)`` so the unit is visible at the
  call site).

Why aliases and not ``typing.NewType``: a ``NewType`` would force a cast
at every arithmetic use under strict mypy without adding any checking
the UNIT rule does not already perform, and the simulation hot path must
stay plain-``float``.  The alias spelling keeps mypy neutral while giving
the AST-level dimensional analysis an unambiguous vocabulary.
"""

from __future__ import annotations

from typing import TypeAlias

__all__ = [
    "Seconds",
    "PerSecond",
    "Packets",
    "Bytes",
    "Bits",
    "BitsPerSecond",
    "Probability",
]

#: Virtual time, delays, intervals and the PI target τ₀ (seconds).
Seconds: TypeAlias = float

#: The PI integral/proportional gains α and β (1/s — i.e. Hz).
PerSecond: TypeAlias = float

#: Queue backlog counted in packets.
Packets: TypeAlias = float

#: Queue backlog / packet sizes counted in bytes.
Bytes: TypeAlias = float

#: Quantities counted in bits (packet sizes on the wire).
Bits: TypeAlias = float

#: Link capacities and departure rates (bit/s).
BitsPerSecond: TypeAlias = float

#: Drop/mark probabilities and the PI2 pseudo-probability p' — always
#: in [0, 1], written through :func:`repro.aqm.base.clamp_unit`.
Probability: TypeAlias = float
