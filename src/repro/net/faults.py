"""Fault injection: adverse-path pipes and scriptable fault schedules.

The paper's stability experiments (Figures 11–13) are claims about AQM
behaviour under adverse, *changing* conditions — traffic bursts, capacity
collapses, regime changes.  This module provides the machinery to push the
reproduction well beyond clean paths:

**Adverse-path pipes** (drop-in replacements for :class:`~repro.net.pipe.Pipe`
on a flow's forward or reverse path):

* :class:`GilbertElliottPipe` — bursty loss from the classic two-state
  Gilbert–Elliott Markov model (:class:`GilbertElliottLoss`), the standard
  way to model correlated wireless/line errors rather than independent
  Bernoulli coin flips;
* :class:`CorruptingPipe` — per-packet corruption; a corrupted packet
  fails its checksum at the receiver and is discarded, so corruption is
  loss with its own attribution counter;
* :class:`ReorderingPipe` — a fraction of packets are held back for an
  extra delay so later packets overtake them (netem's ``reorder``);
* :class:`DuplicatingPipe` — a fraction of packets are delivered twice.

**Scriptable fault schedules** (declarative dataclasses handed to
``Experiment(faults=[...])`` and wired into the dumbbell by
:class:`FaultInjector`):

* :class:`LinkFlapFault` — bottleneck outage windows, optionally repeating;
* :class:`BurstLossFault` — a Gilbert–Elliott loss regime at the
  bottleneck ingress for a time window;
* :class:`CorruptionFault` — random corruption at the bottleneck ingress;
* :class:`AqmStallFault` — the AQM update timer stops firing for a window
  (a starved qdisc work item), controller state preserved;
* :class:`AqmTimerJitterFault` — update firings drift late by a random
  amount (a loaded softirq), stressing the controller's tolerance to a
  mis-paced ``T``.

Every injector activation/deactivation is recorded on the injector's
:attr:`~FaultInjector.timeline` with its virtual time, so a run's fault
history can be reported next to its results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.net.packet import Packet
from repro.net.pipe import DropPipe, Pipe
from repro.sim.engine import Simulator

__all__ = [
    "GilbertElliottLoss",
    "GilbertElliottPipe",
    "CorruptingPipe",
    "ReorderingPipe",
    "DuplicatingPipe",
    "Fault",
    "LinkFlapFault",
    "BurstLossFault",
    "CorruptionFault",
    "AqmStallFault",
    "AqmTimerJitterFault",
    "FaultInjector",
    "parse_fault_spec",
    "FAULT_SPEC_HELP",
]


# ----------------------------------------------------------------------
# Gilbert–Elliott loss model
# ----------------------------------------------------------------------
class GilbertElliottLoss:
    """Two-state Markov (Gilbert–Elliott) packet-loss process.

    The channel is either *good* or *bad*; each packet first advances the
    state (``p_good_to_bad`` / ``p_bad_to_good`` transition probabilities)
    and is then lost with the state's loss probability (defaults: the
    classic Gilbert model — lossless good state, always-lossy bad state).
    Bad-state sojourns are geometric with mean ``1 / p_bad_to_good``
    packets, which is what produces loss *bursts*.

    Use :meth:`from_rates` to parameterize by the two quantities people
    actually measure: overall loss rate and mean burst length.
    """

    def __init__(
        self,
        rng: random.Random,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ):
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0,1] (got {value})")
        self.rng = rng
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.in_bad = False
        self.transitions = 0

    @classmethod
    def from_rates(
        cls,
        rng: random.Random,
        loss_rate: float,
        mean_burst: float,
    ) -> "GilbertElliottLoss":
        """Build a Gilbert model from target loss rate and mean burst length.

        With a lossless good state and an always-lossy bad state, the
        stationary bad-state occupancy *is* the loss rate:
        ``π_bad = p_gb / (p_gb + p_bg)``, and the mean burst length is
        ``1 / p_bg`` packets.
        """
        if not 0.0 < loss_rate < 1.0:
            raise ConfigError(f"loss_rate must be in (0,1) (got {loss_rate})")
        if mean_burst < 1.0:
            raise ConfigError(f"mean_burst must be >= 1 packet (got {mean_burst})")
        p_bg = 1.0 / mean_burst
        p_gb = loss_rate * p_bg / (1.0 - loss_rate)
        if p_gb > 1.0:
            raise ConfigError(
                f"loss_rate={loss_rate} with mean_burst={mean_burst} is "
                f"unreachable (good->bad probability {p_gb:.3f} > 1)"
            )
        return cls(rng, p_gb, p_bg)

    def should_drop(self) -> bool:
        """Advance the channel state for one packet and decide its fate."""
        if self.in_bad:
            if self.rng.random() < self.p_bad_to_good:
                self.in_bad = False
                self.transitions += 1
        else:
            if self.rng.random() < self.p_good_to_bad:
                self.in_bad = True
                self.transitions += 1
        loss = self.loss_bad if self.in_bad else self.loss_good
        return loss > 0 and self.rng.random() < loss


# ----------------------------------------------------------------------
# Adverse-path pipes
# ----------------------------------------------------------------------
class GilbertElliottPipe(DropPipe):
    """A pipe whose losses follow a Gilbert–Elliott bursty process."""

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        model: GilbertElliottLoss,
        sink=None,
    ):
        super().__init__(sim, delay, sink)
        self.model = model

    def _should_drop(self, packet: Packet) -> bool:
        return self.model.should_drop()


class CorruptingPipe(DropPipe):
    """A pipe that corrupts packets with probability ``corrupt``.

    The TCP/UDP models have no payload to damage, so corruption is modeled
    at its observable effect: the receiver's checksum fails and the packet
    is discarded.  Corrupted packets count in :attr:`corrupted` (and in the
    inherited :attr:`lost`), keeping them distinguishable from congestive
    loss in reports.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        corrupt: float,
        rng: random.Random,
        sink=None,
    ):
        super().__init__(sim, delay, sink)
        if not 0.0 <= corrupt <= 1.0:
            raise ConfigError(f"corruption probability must be in [0,1] (got {corrupt})")
        self.corrupt = corrupt
        self.rng = rng
        self.corrupted = 0

    def _should_drop(self, packet: Packet) -> bool:
        if self.corrupt > 0 and self.rng.random() < self.corrupt:
            self.corrupted += 1
            return True
        return False


class ReorderingPipe(Pipe):
    """A pipe that reorders a fraction of packets.

    Each packet is independently selected with probability ``reorder``;
    selected packets incur ``extra_delay`` seconds on top of the base
    delay, so any packet entering less than ``extra_delay`` behind
    overtakes them — netem's ``delay ... reorder`` semantics.  With a
    large enough ``extra_delay`` this forces spurious duplicate ACKs and
    exercises fast-retransmit false sharing.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        reorder: float,
        extra_delay: float,
        rng: random.Random,
        sink=None,
    ):
        super().__init__(sim, delay, sink)
        if not 0.0 <= reorder <= 1.0:
            raise ConfigError(f"reorder probability must be in [0,1] (got {reorder})")
        if extra_delay <= 0:
            raise ConfigError(f"extra_delay must be positive (got {extra_delay})")
        self.reorder = reorder
        self.extra_delay = extra_delay
        self.rng = rng
        self.reordered = 0

    def deliver(self, packet: Packet) -> None:
        if self.sink is None:
            raise RuntimeError("pipe has no sink connected")
        if self.reorder > 0 and self.rng.random() < self.reorder:
            self.reordered += 1
            self._schedule_arrival(packet, extra_delay=self.extra_delay)
        else:
            self._schedule_arrival(packet)


class DuplicatingPipe(Pipe):
    """A pipe that delivers a fraction of packets twice.

    The duplicate arrives ``dup_gap`` seconds after the original (0 means
    back-to-back).  Receivers must treat the copy as a stale segment/ACK;
    senders must not double-count it — exactly the machinery duplication
    faults in real networks exercise.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        duplicate: float,
        rng: random.Random,
        dup_gap: float = 0.0,
        sink=None,
    ):
        super().__init__(sim, delay, sink)
        if not 0.0 <= duplicate <= 1.0:
            raise ConfigError(
                f"duplication probability must be in [0,1] (got {duplicate})"
            )
        if dup_gap < 0:
            raise ConfigError(f"dup_gap cannot be negative (got {dup_gap})")
        self.duplicate = duplicate
        self.dup_gap = dup_gap
        self.rng = rng
        self.duplicated = 0

    def deliver(self, packet: Packet) -> None:
        if self.sink is None:
            raise RuntimeError("pipe has no sink connected")
        self._schedule_arrival(packet)
        if self.duplicate > 0 and self.rng.random() < self.duplicate:
            self.duplicated += 1
            self._schedule_arrival(packet, extra_delay=self.dup_gap)


# ----------------------------------------------------------------------
# Declarative fault schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fault:
    """Base class: a fault active over ``[start, start + duration)``."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigError(f"fault start cannot be negative (got {self.start})")
        if self.duration <= 0:
            raise ConfigError(f"fault duration must be positive (got {self.duration})")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class LinkFlapFault(Fault):
    """Bottleneck outage of ``duration`` seconds starting at ``start``.

    With ``repeat_every`` set, the outage recurs ``count`` times at that
    period — a flapping interface rather than a single cut.
    """

    repeat_every: Optional[float] = None
    count: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.count < 1:
            raise ConfigError(f"count must be >= 1 (got {self.count})")
        if self.repeat_every is None:
            if self.count > 1:
                raise ConfigError("count > 1 requires repeat_every")
        elif self.repeat_every <= self.duration:
            raise ConfigError(
                f"repeat_every ({self.repeat_every}) must exceed the outage "
                f"duration ({self.duration})"
            )

    @property
    def end(self) -> float:
        periods = (self.count - 1) * (self.repeat_every or 0.0)
        return self.start + periods + self.duration

    def windows(self) -> List[Tuple[float, float]]:
        step = self.repeat_every or 0.0
        return [
            (self.start + k * step, self.start + k * step + self.duration)
            for k in range(self.count)
        ]


@dataclass(frozen=True)
class BurstLossFault(Fault):
    """Gilbert–Elliott bursty loss at the bottleneck ingress for a window."""

    loss_rate: float = 0.05
    mean_burst: float = 8.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.loss_rate < 1.0:
            raise ConfigError(f"loss_rate must be in (0,1) (got {self.loss_rate})")
        if self.mean_burst < 1.0:
            raise ConfigError(f"mean_burst must be >= 1 (got {self.mean_burst})")


@dataclass(frozen=True)
class CorruptionFault(Fault):
    """Independent per-packet corruption at the bottleneck ingress."""

    probability: float = 0.01

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.probability <= 1.0:
            raise ConfigError(
                f"corruption probability must be in (0,1] (got {self.probability})"
            )


@dataclass(frozen=True)
class AqmStallFault(Fault):
    """The AQM's periodic update timer stops firing for the window."""


@dataclass(frozen=True)
class AqmTimerJitterFault(Fault):
    """AQM update firings drift late by Uniform(0, ``max_jitter``) seconds."""

    max_jitter: float = 0.016

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_jitter <= 0:
            raise ConfigError(f"max_jitter must be positive (got {self.max_jitter})")


# ----------------------------------------------------------------------
# Injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Wires a declarative fault list into a live topology.

    Parameters
    ----------
    sim:
        The driving simulator (activation/deactivation are its events).
    rng:
        Random stream for the stochastic faults (its own named stream so
        fault randomness never perturbs flow or AQM randomness).
    link:
        The bottleneck :class:`~repro.net.link.Link` (flap target).
    queue:
        The bottleneck :class:`~repro.net.queue.AQMQueue` (loss/corruption
        gate target).
    aqm:
        The AQM under test (stall/jitter target); may be ``None``.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        link=None,
        queue=None,
        aqm=None,
    ):
        self.sim = sim
        self.rng = rng
        self.link = link
        self.queue = queue
        self.aqm = aqm
        #: (virtual time, human-readable event) pairs, in firing order.
        self.timeline: List[Tuple[float, str]] = []
        self.faults: List[Fault] = []
        self._gates: List[Callable[[Packet], bool]] = []

    # -- wiring ---------------------------------------------------------
    def install(self, faults) -> None:
        """Schedule every fault's activation and deactivation events."""
        for fault in faults:
            self.faults.append(fault)
            if isinstance(fault, LinkFlapFault):
                self._install_flap(fault)
            elif isinstance(fault, BurstLossFault):
                self._install_burst_loss(fault)
            elif isinstance(fault, CorruptionFault):
                self._install_corruption(fault)
            elif isinstance(fault, AqmStallFault):
                self._install_stall(fault)
            elif isinstance(fault, AqmTimerJitterFault):
                self._install_jitter(fault)
            else:
                raise ConfigError(f"unknown fault type {type(fault).__name__}")

    def _log(self, message: str) -> None:
        self.timeline.append((self.sim.now, message))

    def _require(self, attr: str, fault: Fault):
        target = getattr(self, attr)
        if target is None:
            raise ConfigError(
                f"{type(fault).__name__} needs a {attr!r} target, but the "
                f"injector was built without one"
            )
        return target

    # -- link flap -------------------------------------------------------
    def _install_flap(self, fault: LinkFlapFault) -> None:
        link = self._require("link", fault)

        def down() -> None:
            link.set_down()
            self._log("link down")

        def up() -> None:
            link.set_up()
            self._log("link up")

        for window_start, window_end in fault.windows():
            self.sim.at(window_start, down)
            self.sim.at(window_end, up)

    # -- bottleneck ingress gates -----------------------------------------
    def _gate_dispatch(self, packet: Packet) -> bool:
        return any(gate(packet) for gate in self._gates)

    def _install_gate_window(
        self, fault: Fault, gate: Callable[[Packet], bool], label: str
    ) -> None:
        queue = self._require("queue", fault)

        def activate() -> None:
            if not self._gates:
                queue.set_ingress_fault(self._gate_dispatch)
            self._gates.append(gate)
            self._log(f"{label} on")

        def deactivate() -> None:
            self._gates.remove(gate)
            if not self._gates:
                queue.set_ingress_fault(None)
            self._log(f"{label} off")

        self.sim.at(fault.start, activate)
        self.sim.at(fault.end, deactivate)

    def _install_burst_loss(self, fault: BurstLossFault) -> None:
        model = GilbertElliottLoss.from_rates(
            self.rng, fault.loss_rate, fault.mean_burst
        )
        self._install_gate_window(
            fault,
            lambda packet: model.should_drop(),
            f"burst loss (rate={fault.loss_rate}, burst={fault.mean_burst})",
        )

    def _install_corruption(self, fault: CorruptionFault) -> None:
        self._install_gate_window(
            fault,
            lambda packet: self.rng.random() < fault.probability,
            f"corruption (p={fault.probability})",
        )

    # -- AQM timer faults ---------------------------------------------------
    def _install_stall(self, fault: AqmStallFault) -> None:
        aqm = self._require("aqm", fault)

        def stall() -> None:
            aqm.pause_updates()
            self._log("AQM updates stalled")

        def resume() -> None:
            aqm.resume_updates()
            self._log("AQM updates resumed")

        self.sim.at(fault.start, stall)
        self.sim.at(fault.end, resume)

    def _install_jitter(self, fault: AqmTimerJitterFault) -> None:
        aqm = self._require("aqm", fault)

        def enable() -> None:
            timer = aqm.update_timer
            if timer is not None:
                timer.set_jitter(lambda: self.rng.uniform(0.0, fault.max_jitter))
            self._log(f"AQM timer jitter on (max={fault.max_jitter * 1e3:.0f}ms)")

        def disable() -> None:
            timer = aqm.update_timer
            if timer is not None:
                timer.set_jitter(None)
            self._log("AQM timer jitter off")

        self.sim.at(fault.start, enable)
        self.sim.at(fault.end, disable)

    # -- reporting -------------------------------------------------------
    def describe(self) -> str:
        """Render the recorded fault timeline as aligned text lines."""
        if not self.timeline:
            return "(no fault events fired)"
        return "\n".join(f"t={t:8.3f}s  {msg}" for t, msg in self.timeline)


# ----------------------------------------------------------------------
# CLI fault-spec mini-language
# ----------------------------------------------------------------------
FAULT_SPEC_HELP = (
    "fault spec: KIND:START:DURATION[:EXTRA...] — "
    "flap:START:DUR[:REPEAT_EVERY[:COUNT]], "
    "burstloss:START:DUR[:LOSS_RATE[:MEAN_BURST]], "
    "corrupt:START:DUR[:PROB], "
    "stall:START:DUR, "
    "jitter:START:DUR[:MAX_JITTER]"
)


def parse_fault_spec(spec: str) -> Fault:
    """Parse one ``--fault`` command-line spec into a fault object.

    Examples: ``flap:30:2``, ``flap:30:2:20:3`` (three 2 s outages 20 s
    apart), ``burstloss:10:15:0.05:8``, ``stall:5:3``, ``jitter:5:10:0.02``.
    """
    parts = spec.split(":")
    kind = parts[0].strip().lower()
    try:
        numbers = [float(part) for part in parts[1:]]
    except ValueError as exc:
        raise ConfigError(f"bad fault spec {spec!r}: {exc}") from None
    if len(numbers) < 2:
        raise ConfigError(
            f"bad fault spec {spec!r}: need at least KIND:START:DURATION"
        )
    start, duration, extra = numbers[0], numbers[1], numbers[2:]

    def at_most(n: int) -> None:
        if len(extra) > n:
            raise ConfigError(f"bad fault spec {spec!r}: too many fields")

    if kind == "flap":
        at_most(2)
        repeat = extra[0] if len(extra) >= 1 else None
        count = int(extra[1]) if len(extra) >= 2 else (1 if repeat is None else 2)
        return LinkFlapFault(start, duration, repeat_every=repeat, count=count)
    if kind == "burstloss":
        at_most(2)
        return BurstLossFault(
            start,
            duration,
            loss_rate=extra[0] if len(extra) >= 1 else 0.05,
            mean_burst=extra[1] if len(extra) >= 2 else 8.0,
        )
    if kind == "corrupt":
        at_most(1)
        return CorruptionFault(
            start, duration, probability=extra[0] if extra else 0.01
        )
    if kind == "stall":
        at_most(0)
        return AqmStallFault(start, duration)
    if kind == "jitter":
        at_most(1)
        return AqmTimerJitterFault(
            start, duration, max_jitter=extra[0] if extra else 0.016
        )
    raise ConfigError(f"unknown fault kind {kind!r} in spec {spec!r}")
