"""Packets and ECN codepoints.

The two-bit ECN field in the IP header is central to the paper: the coupled
PI+PI2 AQM (Figure 9) classifies traffic into *Scalable* and *Classic* by
ECN codepoint.  Following the paper (and the later RFC 9331 L4S identifier):

* ``NOT_ECT`` — not ECN-capable; congestion is signalled by **drop**.
* ``ECT0``    — Classic ECN (RFC 3168); a CE mark means the same as a drop.
* ``ECT1``    — Scalable / L4S traffic (the paper modified DCTCP to set
  ECT(1) instead of ECT(0)); a CE mark is a fine-grained congestion signal.
* ``CE``      — Congestion Experienced; set by the AQM on marking.  Both
  classes share CE, so the original codepoint is remembered out-of-band in
  :attr:`Packet.ect` for classification of already-marked packets — this
  mirrors how a real network node cannot distinguish the origin of a CE
  packet, which is why the paper's classifier maps ``ECT(1) or CE`` to the
  Scalable branch.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

__all__ = ["ECN", "Packet", "DEFAULT_MSS", "ACK_SIZE", "HEADER_BYTES"]

#: Default maximum segment size in bytes (Ethernet MTU minus IP+TCP headers).
DEFAULT_MSS = 1448

#: IP + TCP header overhead carried by every segment.
HEADER_BYTES = 52

#: Size of a pure ACK on the wire.
ACK_SIZE = HEADER_BYTES

_packet_uid = itertools.count()


class ECN(enum.IntEnum):
    """The two-bit ECN field of the IP header (RFC 3168 codepoints)."""

    NOT_ECT = 0b00
    ECT1 = 0b01
    ECT0 = 0b10
    CE = 0b11

    @property
    def ecn_capable(self) -> bool:
        """True if the transport declared ECN capability (ECT or CE)."""
        return self is not ECN.NOT_ECT


@dataclass(slots=True)
class Packet:
    """A simulated IP packet carrying a TCP segment, an ACK, or UDP payload.

    Sequence numbers are in **segments**, not bytes: the paper's window
    equations (Appendix A) are all expressed in segments per RTT, and
    segment granularity is what the Linux stack effectively operates at for
    long flows.  ``seq`` is the index of the first segment carried and
    ``seg_count`` how many it covers (always 1 for the senders in this
    repository, kept general for GSO-style extensions).

    Attributes
    ----------
    flow_id:
        Identifier of the owning flow; used for per-flow accounting.
    seq:
        Segment sequence number for data packets.
    ack:
        Cumulative ACK number (next expected segment) for ACK packets.
    size:
        Size on the wire in bytes, including headers.
    ecn:
        Current ECN field (mutated to :attr:`ECN.CE` by a marking AQM).
    ect:
        The original ECT codepoint, preserved across CE marking so the
        classifier can treat ``ECT(1) or CE`` as Scalable (Figure 9).
    ece:
        ECN-Echo flag on ACKs (classic feedback, RFC 3168) — also used by
        the DCTCP receiver's accurate per-packet echo.
    cwr:
        Congestion-Window-Reduced flag on data packets; stops the classic
        receiver's persistent ECE echo.
    enqueue_time / send_time:
        Timestamps stamped by the queue and the sender; the difference
        between dequeue and ``enqueue_time`` is the per-packet queue delay
        that Figures 14 and 16 report distributions of.
    """

    flow_id: int
    size: int = DEFAULT_MSS + HEADER_BYTES
    seq: int = -1
    ack: int = -1
    is_ack: bool = False
    ecn: ECN = ECN.NOT_ECT
    ect: ECN = ECN.NOT_ECT
    ece: bool = False
    cwr: bool = False
    seg_count: int = 1
    #: Selective-acknowledgement information on ACKs: the receiver's
    #: out-of-order segment numbers above ``ack`` (a bounded snapshot of
    #: the SACK scoreboard; empty when SACK is off).
    sack: tuple = ()
    send_time: float = 0.0
    enqueue_time: float = 0.0
    is_retransmit: bool = False
    uid: int = field(default_factory=lambda: next(_packet_uid))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive (got {self.size})")
        # Preserve the original ECT codepoint if the caller set only `ecn`.
        if self.ect is ECN.NOT_ECT and self.ecn is not ECN.NOT_ECT:
            self.ect = self.ecn

    # ------------------------------------------------------------------
    # ECN operations
    # ------------------------------------------------------------------
    @property
    def ecn_capable(self) -> bool:
        """Whether this packet may be CE-marked instead of dropped."""
        return self.ecn.ecn_capable

    @property
    def is_scalable(self) -> bool:
        """Classifier predicate from Figure 9: ``ECT(1) or CE`` → Scalable."""
        return self.ecn is ECN.ECT1 or (self.ecn is ECN.CE and self.ect is ECN.ECT1)

    @property
    def ce_marked(self) -> bool:
        return self.ecn is ECN.CE

    def mark_ce(self) -> None:
        """Apply a CE congestion mark.  Only valid on ECN-capable packets."""
        if not self.ecn.ecn_capable:
            raise ValueError("cannot CE-mark a Not-ECT packet; it must be dropped")
        self.ecn = ECN.CE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "ACK" if self.is_ack else "DATA"
        num = self.ack if self.is_ack else self.seq
        return f"<{kind} flow={self.flow_id} num={num} {self.ecn.name} {self.size}B>"
