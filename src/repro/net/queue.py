"""FIFO bottleneck queue with an AQM hook and tail-drop backstop.

This models the router buffer of the paper's testbed (40 000 packets, i.e.
2.4 s at 200 Mb/s — Table 1).  The AQM is consulted on every enqueue; if it
neither drops nor the buffer overflows, the packet joins the FIFO.  All
traffic classes share this single queue, exactly as in the paper's
single-queue coexistence experiments ("In the network, all packets use the
same FIFO queue", Section 5).

Queue-delay estimation
----------------------
PIE was designed for hardware and estimates queuing delay as
``backlog / departure_rate`` with a measured departure-rate estimator
(unlike CoDel's per-packet timestamps).  Both estimators are implemented:

* :class:`CapacityDelayEstimator` — exact conversion using the configured
  link rate (what the PIE RFC calls the known-drain-rate simplification,
  used by DOCSIS PIE).
* :class:`DepartureRateEstimator` — PIE's measurement loop: time how long
  it takes to drain ``dq_threshold`` bytes, average the rate, divide.

The per-packet *actual* sojourn time is additionally recorded at dequeue
time (difference of timestamps); that is the quantity whose distribution
Figures 14 and 16 report.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.aqm.base import AQM, Decision
from repro.net.packet import Packet
from repro.sim.engine import Simulator

__all__ = [
    "AQMQueue",
    "QueueStats",
    "CapacityDelayEstimator",
    "DepartureRateEstimator",
]


class QueueStats:
    """Arrival/departure/drop accounting for one queue."""

    __slots__ = (
        "arrived",
        "enqueued",
        "dequeued",
        "aqm_dropped",
        "tail_dropped",
        "fault_dropped",
        "ce_marked",
        "bytes_arrived",
        "bytes_dequeued",
    )

    def __init__(self) -> None:
        self.arrived = 0
        self.enqueued = 0
        self.dequeued = 0
        self.aqm_dropped = 0
        self.tail_dropped = 0
        self.fault_dropped = 0
        self.ce_marked = 0
        self.bytes_arrived = 0
        self.bytes_dequeued = 0

    @property
    def dropped(self) -> int:
        return self.aqm_dropped + self.tail_dropped + self.fault_dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<QueueStats in={self.arrived} out={self.dequeued} "
            f"aqm_drop={self.aqm_dropped} tail_drop={self.tail_dropped} "
            f"fault_drop={self.fault_dropped} mark={self.ce_marked}>"
        )


class CapacityDelayEstimator:
    """Exact queue-delay estimate from the configured drain rate.

    ``delay = backlog_bytes * 8 / capacity_bps``.  Tracks capacity changes
    (Figure 12's varying-link-capacity experiment) via :meth:`set_capacity`.
    """

    def __init__(self, capacity_bps: float):
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive (got {capacity_bps})")
        self.capacity_bps = capacity_bps

    def set_capacity(self, capacity_bps: float) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive (got {capacity_bps})")
        self.capacity_bps = capacity_bps

    def on_dequeue(self, bytes_sent: int, now: float) -> None:
        """No measurement needed; drain rate is known."""

    def delay(self, backlog_bytes: int) -> float:
        return backlog_bytes * 8.0 / self.capacity_bps


class DepartureRateEstimator:
    """PIE's measured departure-rate estimator (RFC 8033 section 5.1).

    Measurement starts when the backlog exceeds ``dq_threshold`` bytes; the
    rate sample is ``bytes_drained / elapsed`` once at least the threshold
    has drained, and samples are smoothed with an exponential average.
    Until the first sample completes, the estimator falls back to the
    initial rate guess.
    """

    def __init__(
        self,
        initial_rate_bps: float = 10e6,
        dq_threshold: int = 16 * 1024,
        smoothing: float = 0.5,
    ):
        if initial_rate_bps <= 0:
            raise ValueError("initial rate must be positive")
        self.rate_bps = initial_rate_bps
        self.dq_threshold = dq_threshold
        self.smoothing = smoothing
        self._in_measurement = False
        self._dq_start = 0.0
        self._dq_bytes = 0
        self._backlog_hint = 0

    def set_capacity(self, capacity_bps: float) -> None:
        """Capacity changes are discovered by measurement; nothing to do."""

    def on_dequeue(self, bytes_sent: int, now: float) -> None:
        if not self._in_measurement:
            if self._backlog_hint >= self.dq_threshold:
                # The packet triggering the start drains *at* the start
                # instant; counting it would bias the rate high.
                self._in_measurement = True
                self._dq_start = now
                self._dq_bytes = 0
            return
        self._dq_bytes += bytes_sent
        if self._dq_bytes >= self.dq_threshold:
            elapsed = now - self._dq_start
            if elapsed > 0:
                sample = self._dq_bytes * 8.0 / elapsed
                w = self.smoothing
                self.rate_bps = (1 - w) * self.rate_bps + w * sample
            self._in_measurement = False

    def observe_backlog(self, backlog_bytes: int) -> None:
        self._backlog_hint = backlog_bytes

    def delay(self, backlog_bytes: int) -> float:
        return backlog_bytes * 8.0 / self.rate_bps


class AQMQueue:
    """Single FIFO queue managed by an AQM, drained by a link.

    Parameters
    ----------
    sim:
        The simulator driving timestamps and the AQM's update timer.
    aqm:
        The active queue management algorithm; ``None`` means pure
        tail-drop.
    capacity_bps:
        Drain rate used by the default exact delay estimator.
    buffer_packets:
        Hard tail-drop limit in packets (Table 1 uses 40 000).
    estimator:
        Override the queue-delay estimator (e.g. PIE's measured one).
    on_sojourn:
        Optional callback ``(now, sojourn_seconds, packet)`` invoked at each
        dequeue — the metrics layer uses this to build the per-packet queue
        delay distributions of Figures 14 and 16.
    """

    def __init__(
        self,
        sim: Simulator,
        aqm: Optional[AQM],
        capacity_bps: float,
        buffer_packets: int = 40_000,
        estimator: Optional[object] = None,
        on_sojourn: Optional[Callable[[float, float, Packet], None]] = None,
    ):
        if buffer_packets <= 0:
            raise ValueError(f"buffer must hold at least one packet (got {buffer_packets})")
        self.sim = sim
        self.aqm = aqm
        self.buffer_packets = buffer_packets
        self.estimator = estimator or CapacityDelayEstimator(capacity_bps)
        self.on_sojourn = on_sojourn
        self.stats = QueueStats()
        self._fifo: deque[Packet] = deque()
        self._bytes = 0
        self._wakeup: Optional[Callable[[], None]] = None
        #: Fault-injection gate: a predicate consulted before the AQM; a
        #: True return drops the arriving packet (counted separately from
        #: AQM/tail drops so loss attribution in reports stays honest).
        self._ingress_fault: Optional[Callable[[Packet], bool]] = None
        if aqm is not None:
            aqm.attach(sim, self)

    # ------------------------------------------------------------------
    # QueueView protocol (what the AQM can see)
    # ------------------------------------------------------------------
    def byte_length(self) -> int:
        return self._bytes

    def packet_length(self) -> int:
        return len(self._fifo)

    def queue_delay(self) -> float:
        return self.estimator.delay(self._bytes)

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Run the AQM decision and enqueue.  Returns False if dropped."""
        self.stats.arrived += 1
        self.stats.bytes_arrived += packet.size

        if self._ingress_fault is not None and self._ingress_fault(packet):
            self.stats.fault_dropped += 1
            return False

        if len(self._fifo) >= self.buffer_packets:
            self.stats.tail_dropped += 1
            return False

        if self.aqm is not None:
            decision = self.aqm.decide(packet)
            if decision is Decision.DROP:
                self.stats.aqm_dropped += 1
                return False
            if decision is Decision.MARK:
                packet.mark_ce()
                self.stats.ce_marked += 1

        packet.enqueue_time = self.sim.now
        self._fifo.append(packet)
        self._bytes += packet.size
        self.stats.enqueued += 1
        if isinstance(self.estimator, DepartureRateEstimator):
            self.estimator.observe_backlog(self._bytes)
        if self._wakeup is not None:
            self._wakeup()
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head-of-line packet, or None if empty."""
        if not self._fifo:
            return None
        packet = self._fifo.popleft()
        self._bytes -= packet.size
        now = self.sim.now
        self.stats.dequeued += 1
        self.stats.bytes_dequeued += packet.size
        self.estimator.on_dequeue(packet.size, now)
        if self.aqm is not None:
            self.aqm.on_dequeue(packet, now)
        if self.on_sojourn is not None:
            self.on_sojourn(now, now - packet.enqueue_time, packet)
        return packet

    def set_wakeup(self, fn: Callable[[], None]) -> None:
        """Register the link's 'queue became non-empty' notification."""
        self._wakeup = fn

    def set_ingress_fault(self, fn: Optional[Callable[[Packet], bool]]) -> None:
        """Install (or clear, with ``None``) a fault-injection drop gate.

        The predicate runs on every arrival before the AQM sees the
        packet; returning True drops it and increments
        ``stats.fault_dropped``.  Used by
        :class:`repro.net.faults.FaultInjector` for bursty-loss and
        corruption windows at the bottleneck.
        """
        self._ingress_fault = fn

    def __len__(self) -> int:
        return len(self._fifo)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AQMQueue pkts={len(self._fifo)} bytes={self._bytes}>"
