"""Fixed-delay, infinite-capacity path segments.

A :class:`Pipe` models the uncongested parts of the paper's testbed paths:
the per-flow netem delay that sets each flow's base RTT, and the reverse
(ACK) path, which the testbed keeps uncongested.  Packets are delivered to
the sink exactly ``delay`` seconds after entering; ordering is preserved
because arrivals are served in (time, seq) order whether they sit on the
event heap or on the pipe's arrival train.

Arrival train (event batching)
------------------------------
A pipe holds ``rate x delay`` packets in flight — hundreds per flow at
paper-scale bandwidth-delay products — and the naive one-heap-event-per-
packet schedule makes those in-flight packets the bulk of the simulator's
heap, taxing *every* push/pop.  When ``batching`` is enabled (the
default) in-flight packets instead sit on a per-pipe FIFO *train* of
``(due, seq, packet)`` entries served by a single pending heap event.
Each drain dispatch delivers its due entry, then keeps delivering
consecutive entries inline — advancing the clock via
:meth:`~repro.sim.engine.Simulator.advance_to` — for as long as the next
entry's ``(due, seq)`` sorts strictly before the next foreign heap event
and within the run horizon; otherwise one continuation event is
scheduled *with the entry's reserved seq*, which is exactly the event the
unbatched pipe would have scheduled.  Sequence numbers are reserved at
``deliver()`` time (:meth:`~repro.sim.engine.Simulator.reserve_seq`), so
the (time, seq) identity of every arrival is identical with batching on
or off and results are bit-exact either way.

:class:`DropPipe` is the shared base for pipes that discard packets on the
way through; :class:`LossyPipe` (independent Bernoulli loss) lives here,
and the adverse-path family — Gilbert–Elliott bursty loss, corruption,
reordering, duplication — lives in :mod:`repro.net.faults`.  Pipes that
perturb a packet's delay (reordering's ``extra_delay``, duplication's
``dup_gap``) schedule those perturbed arrivals as ordinary heap events —
the train stays sorted because it only ever carries base-delay arrivals.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional, Tuple

from repro.net.link import Sink
from repro.net.packet import Packet
from repro.sim.engine import Simulator

__all__ = ["Pipe", "DropPipe", "LossyPipe"]


class Pipe:
    """Deliver packets to ``sink`` after a fixed delay.

    Parameters
    ----------
    sim:
        Simulator instance.
    delay:
        One-way delay in seconds (0 delivers synchronously).
    sink:
        Downstream recipient; may be attached after construction.
    batching:
        Keep in-flight packets on the arrival train (one pending heap
        event per pipe) instead of one heap event each.  Bit-exact
        either way; disable only for A/B measurement or debugging.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        sink: Optional[Sink] = None,
        batching: bool = True,
    ):
        if delay < 0:
            raise ValueError(f"delay cannot be negative (got {delay})")
        self.sim = sim
        self.delay = delay
        self.sink = sink
        self.batching = batching
        self.delivered = 0
        #: In-flight arrivals, ascending (due, seq): constant base delay
        #: and a monotonic clock keep appends sorted.  One stream-lane
        #: continuation is pending whenever the train is non-empty.
        self._train: Deque[Tuple[float, int, Packet]] = deque()
        self._train_pending = False

    def deliver(self, packet: Packet) -> None:
        if self.sink is None:
            raise RuntimeError("pipe has no sink connected")
        self._schedule_arrival(packet)

    def _schedule_arrival(self, packet: Packet, extra_delay: float = 0.0) -> None:
        delay = self.delay + extra_delay
        if delay <= 0:
            self._arrive(packet)
            return
        if self.batching and extra_delay == 0.0:
            sim = self.sim
            # Reserve the seq the unbatched schedule() would consume here,
            # so tie-breaks are identical whether this arrival rides the
            # train or (after a batch break) goes on the heap itself.
            self._train.append((sim.now + delay, sim.reserve_seq(), packet))
            if not self._train_pending:
                due, seq, _ = self._train[0]
                sim.stream_schedule(due, seq, self._drain)
                self._train_pending = True
        else:
            # Fire-and-forget: arrivals are never cancelled, so the
            # pooled (no-handle) schedule avoids one Event allocation
            # per packet on the unbatched / perturbed-delay paths.
            self.sim.call_later(delay, self._arrive, packet)

    def _drain(self) -> None:
        """Deliver the due train entry, then coalesce successors inline.

        Each inline delivery absorbs what would have been one heap event;
        the first entry is the dispatch itself and always delivers.  The
        remainder (if an event intervenes, the horizon ends, or batching
        is interrogated outside ``run``) is rescheduled as one event
        carrying the head entry's reserved seq.
        """
        sim = self.sim
        train = self._train
        horizon = sim.horizon
        delivered = 0
        while train:
            due, seq, packet = train[0]
            if delivered:
                # Foreign-event check: deliver inline only while (due,
                # seq) sorts strictly before every pending event.
                if horizon is None or due > horizon:
                    break
                if sim.pending_before(due, seq):
                    sim.note_batch_break()
                    break
                sim.advance_to(due)
            train.popleft()
            delivered += 1
            self._arrive(packet)
        if train:
            due, seq, _ = train[0]
            sim.stream_schedule(due, seq, self._drain)
            self._train_pending = True
        else:
            self._train_pending = False

    def _arrive(self, packet: Packet) -> None:
        self.delivered += 1
        self.sink.deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Pipe delay={self.delay * 1e3:.2f}ms>"


class DropPipe(Pipe):
    """A pipe that may discard packets; subclasses decide which.

    Subclasses override :meth:`_should_drop`; dropped packets are counted
    in :attr:`lost` and never reach the sink.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        sink: Optional[Sink] = None,
        batching: bool = True,
    ):
        super().__init__(sim, delay, sink, batching=batching)
        self.lost = 0

    def _should_drop(self, packet: Packet) -> bool:
        raise NotImplementedError

    def deliver(self, packet: Packet) -> None:
        if self._should_drop(packet):
            self.lost += 1
            return
        super().deliver(packet)


class LossyPipe(DropPipe):
    """A pipe that independently drops each packet with probability ``loss``."""

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        loss: float,
        rng: random.Random,
        sink: Optional[Sink] = None,
        batching: bool = True,
    ):
        super().__init__(sim, delay, sink, batching=batching)
        if not 0.0 <= loss <= 1.0:
            raise ValueError(f"loss probability must be in [0,1] (got {loss})")
        self.loss = loss
        self.rng = rng

    def _should_drop(self, packet: Packet) -> bool:
        return self.loss > 0 and self.rng.random() < self.loss
