"""Fixed-delay, infinite-capacity path segments.

A :class:`Pipe` models the uncongested parts of the paper's testbed paths:
the per-flow netem delay that sets each flow's base RTT, and the reverse
(ACK) path, which the testbed keeps uncongested.  Packets are delivered to
the sink exactly ``delay`` seconds after entering; ordering is preserved
because the underlying event heap is FIFO for equal timestamps and delay is
constant.

:class:`DropPipe` is the shared base for pipes that discard packets on the
way through; :class:`LossyPipe` (independent Bernoulli loss) lives here,
and the adverse-path family — Gilbert–Elliott bursty loss, corruption,
reordering, duplication — lives in :mod:`repro.net.faults`.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net.link import Sink
from repro.net.packet import Packet
from repro.sim.engine import Simulator

__all__ = ["Pipe", "DropPipe", "LossyPipe"]


class Pipe:
    """Deliver packets to ``sink`` after a fixed delay."""

    def __init__(self, sim: Simulator, delay: float, sink: Optional[Sink] = None):
        if delay < 0:
            raise ValueError(f"delay cannot be negative (got {delay})")
        self.sim = sim
        self.delay = delay
        self.sink = sink
        self.delivered = 0

    def deliver(self, packet: Packet) -> None:
        if self.sink is None:
            raise RuntimeError("pipe has no sink connected")
        self._schedule_arrival(packet)

    def _schedule_arrival(self, packet: Packet, extra_delay: float = 0.0) -> None:
        delay = self.delay + extra_delay
        if delay > 0:
            self.sim.schedule(delay, self._arrive, packet)
        else:
            self._arrive(packet)

    def _arrive(self, packet: Packet) -> None:
        self.delivered += 1
        self.sink.deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Pipe delay={self.delay * 1e3:.2f}ms>"


class DropPipe(Pipe):
    """A pipe that may discard packets; subclasses decide which.

    Subclasses override :meth:`_should_drop`; dropped packets are counted
    in :attr:`lost` and never reach the sink.
    """

    def __init__(self, sim: Simulator, delay: float, sink: Optional[Sink] = None):
        super().__init__(sim, delay, sink)
        self.lost = 0

    def _should_drop(self, packet: Packet) -> bool:
        raise NotImplementedError

    def deliver(self, packet: Packet) -> None:
        if self._should_drop(packet):
            self.lost += 1
            return
        super().deliver(packet)


class LossyPipe(DropPipe):
    """A pipe that independently drops each packet with probability ``loss``."""

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        loss: float,
        rng: random.Random,
        sink: Optional[Sink] = None,
    ):
        super().__init__(sim, delay, sink)
        if not 0.0 <= loss <= 1.0:
            raise ValueError(f"loss probability must be in [0,1] (got {loss})")
        self.loss = loss
        self.rng = rng

    def _should_drop(self, packet: Packet) -> bool:
        return self.loss > 0 and self.rng.random() < self.loss
