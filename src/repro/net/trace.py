"""Packet-event tracing.

A :class:`PacketTrace` collects timestamped records of what happened to
packets at the bottleneck — enqueue, dequeue, AQM drop, tail drop, CE
mark — like a tcpdump/qdisc-stats hybrid.  It attaches non-intrusively by
wrapping an :class:`~repro.net.queue.AQMQueue`'s entry points, so any
experiment can be traced without touching the datapath classes.

Used for debugging, for tests that assert event *sequences* (not just
counters), and by downstream users who want packet-level visibility.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.net.packet import Packet
from repro.net.queue import AQMQueue

__all__ = ["TraceEvent", "PacketTrace", "TraceRecord"]


class TraceEvent(enum.Enum):
    ENQUEUE = "enqueue"
    DEQUEUE = "dequeue"
    AQM_DROP = "aqm_drop"
    TAIL_DROP = "tail_drop"
    CE_MARK = "ce_mark"


@dataclass(frozen=True)
class TraceRecord:
    """One traced packet event."""

    time: float
    event: TraceEvent
    flow_id: int
    seq: int
    size: int
    uid: int


class PacketTrace:
    """Wraps a queue's enqueue/dequeue to record per-packet events.

    Parameters
    ----------
    queue:
        The queue to trace.  Its ``enqueue`` and ``dequeue`` methods are
        wrapped in place; call :meth:`detach` to restore them.
    limit:
        Optional cap on stored records (oldest dropped beyond it), to
        bound memory on long runs.
    """

    def __init__(self, queue: AQMQueue, limit: Optional[int] = None):
        if limit is not None and limit <= 0:
            raise ValueError(f"limit must be positive (got {limit})")
        self.queue = queue
        self.limit = limit
        self.records: List[TraceRecord] = []
        self._orig_enqueue = queue.enqueue
        self._orig_dequeue = queue.dequeue
        queue.enqueue = self._traced_enqueue  # type: ignore[method-assign]
        queue.dequeue = self._traced_dequeue  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def _record(self, event: TraceEvent, pkt: Packet) -> None:
        self.records.append(
            TraceRecord(
                time=self.queue.sim.now,
                event=event,
                flow_id=pkt.flow_id,
                seq=pkt.seq,
                size=pkt.size,
                uid=pkt.uid,
            )
        )
        if self.limit is not None and len(self.records) > self.limit:
            del self.records[0]

    def _traced_enqueue(self, pkt: Packet) -> bool:
        was_marked = pkt.ce_marked
        before_tail = self.queue.stats.tail_dropped
        accepted = self._orig_enqueue(pkt)
        if accepted:
            if pkt.ce_marked and not was_marked:
                self._record(TraceEvent.CE_MARK, pkt)
            self._record(TraceEvent.ENQUEUE, pkt)
        elif self.queue.stats.tail_dropped > before_tail:
            self._record(TraceEvent.TAIL_DROP, pkt)
        else:
            self._record(TraceEvent.AQM_DROP, pkt)
        return accepted

    def _traced_dequeue(self) -> Optional[Packet]:
        pkt = self._orig_dequeue()
        if pkt is not None:
            self._record(TraceEvent.DEQUEUE, pkt)
        return pkt

    def detach(self) -> None:
        """Restore the queue's original methods."""
        self.queue.enqueue = self._orig_enqueue  # type: ignore[method-assign]
        self.queue.dequeue = self._orig_dequeue  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def events(self, kind: Optional[TraceEvent] = None) -> Iterator[TraceRecord]:
        """Iterate records, optionally filtered by event kind."""
        for record in self.records:
            if kind is None or record.event is kind:
                yield record

    def count(self, kind: TraceEvent) -> int:
        return sum(1 for _ in self.events(kind))

    def flow(self, flow_id: int) -> List[TraceRecord]:
        return [r for r in self.records if r.flow_id == flow_id]

    def __len__(self) -> int:
        return len(self.records)
