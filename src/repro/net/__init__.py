"""Network substrate: packets, ECN, FIFO queue with AQM hook, links, pipes,
and the fault-injection layer (adverse pipes + scriptable fault schedules)."""

from repro.net.faults import (
    AqmStallFault,
    AqmTimerJitterFault,
    BurstLossFault,
    CorruptingPipe,
    CorruptionFault,
    DuplicatingPipe,
    Fault,
    FaultInjector,
    GilbertElliottLoss,
    GilbertElliottPipe,
    LinkFlapFault,
    ReorderingPipe,
    parse_fault_spec,
)
from repro.net.link import Link, Sink
from repro.net.node import CallbackSink, CountingSink, NullSink
from repro.net.packet import ACK_SIZE, DEFAULT_MSS, ECN, HEADER_BYTES, Packet
from repro.net.pipe import DropPipe, LossyPipe, Pipe
from repro.net.trace import PacketTrace, TraceEvent, TraceRecord
from repro.net.queue import (
    AQMQueue,
    CapacityDelayEstimator,
    DepartureRateEstimator,
    QueueStats,
)

__all__ = [
    "Packet",
    "ECN",
    "DEFAULT_MSS",
    "ACK_SIZE",
    "HEADER_BYTES",
    "AQMQueue",
    "QueueStats",
    "CapacityDelayEstimator",
    "DepartureRateEstimator",
    "Link",
    "Sink",
    "Pipe",
    "DropPipe",
    "LossyPipe",
    "GilbertElliottLoss",
    "GilbertElliottPipe",
    "CorruptingPipe",
    "ReorderingPipe",
    "DuplicatingPipe",
    "Fault",
    "LinkFlapFault",
    "BurstLossFault",
    "CorruptionFault",
    "AqmStallFault",
    "AqmTimerJitterFault",
    "FaultInjector",
    "parse_fault_spec",
    "CountingSink",
    "NullSink",
    "CallbackSink",
    "PacketTrace",
    "TraceEvent",
    "TraceRecord",
]
