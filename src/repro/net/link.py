"""Serializing bottleneck link.

Drains an :class:`~repro.net.queue.AQMQueue` at a configurable bit rate and
hands each packet to a downstream sink after its serialization time plus a
fixed propagation delay.  Utilization accounting (busy time and delivered
bytes per sampling window) feeds Figure 18.

The rate may be changed mid-simulation (:meth:`Link.set_capacity`), which
is how the Figure 12 varying-link-capacity experiment (100:20:100 Mb/s) is
driven; a rate change takes effect from the next packet, as with a real
shaper reconfiguration.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.net.packet import Packet
from repro.net.queue import AQMQueue
from repro.sim.engine import Simulator

__all__ = ["Link", "Sink"]


class Sink(Protocol):
    """Anything that can receive a packet from a link or pipe."""

    def deliver(self, packet: Packet) -> None: ...


class Link:
    """Point-to-point serializing link fed by a queue.

    Parameters
    ----------
    sim:
        Simulator instance.
    queue:
        The FIFO it drains; the link registers itself as the queue's
        wake-up callback so transmission restarts when a packet arrives
        into an empty queue.
    capacity_bps:
        Line rate in bits per second.
    sink:
        Downstream recipient of transmitted packets.
    prop_delay:
        One-way propagation delay in seconds appended after serialization.
    """

    def __init__(
        self,
        sim: Simulator,
        queue: AQMQueue,
        capacity_bps: float,
        sink: Optional[Sink] = None,
        prop_delay: float = 0.0,
    ):
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive (got {capacity_bps})")
        if prop_delay < 0:
            raise ValueError(f"propagation delay cannot be negative (got {prop_delay})")
        self.sim = sim
        self.queue = queue
        self.capacity_bps = capacity_bps
        self.sink = sink
        self.prop_delay = prop_delay
        self.busy = False
        self.down = False
        self.outages = 0
        self.busy_time = 0.0
        self.bytes_sent = 0
        self.packets_sent = 0
        self._route: Optional[Callable[[Packet], Sink]] = None
        queue.set_wakeup(self._on_queue_nonempty)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_capacity(self, capacity_bps: float) -> None:
        """Change the line rate; also updates the queue's delay estimator."""
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive (got {capacity_bps})")
        self.capacity_bps = capacity_bps
        self.queue.estimator.set_capacity(capacity_bps)

    def set_router(self, route: Callable[[Packet], Sink]) -> None:
        """Install per-packet routing (used by the dumbbell topology to
        deliver each flow's packets to its own receiver-side pipe)."""
        self._route = route

    def set_down(self) -> None:
        """Take the link down (fault injection: an outage / flap window).

        A transmission already in progress completes — the bits are on the
        wire — but no new packet starts serializing until :meth:`set_up`.
        Arriving packets keep queuing (and tail-drop once the buffer
        fills), exactly as behind a dead interface.  Idempotent.
        """
        if not self.down:
            self.down = True
            self.outages += 1

    def set_up(self) -> None:
        """Restore a downed link and resume draining the queue.  Idempotent."""
        if self.down:
            self.down = False
            if not self.busy:
                self._transmit_next()

    # ------------------------------------------------------------------
    # Transmission loop
    # ------------------------------------------------------------------
    def _on_queue_nonempty(self) -> None:
        if not self.busy and not self.down:
            self._transmit_next()

    def _transmit_next(self) -> None:
        if self.down:
            self.busy = False
            return
        packet = self.queue.dequeue()
        if packet is None:
            self.busy = False
            return
        self.busy = True
        tx_time = packet.size * 8.0 / self.capacity_bps
        self.busy_time += tx_time
        self.bytes_sent += packet.size
        self.packets_sent += 1
        self.sim.schedule(tx_time, self._on_tx_complete, packet)

    def _on_tx_complete(self, packet: Packet) -> None:
        sink = self._route(packet) if self._route is not None else self.sink
        if sink is not None:
            if self.prop_delay > 0:
                self.sim.schedule(self.prop_delay, sink.deliver, packet)
            else:
                sink.deliver(packet)
        self._transmit_next()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "down" if self.down else ("busy" if self.busy else "idle")
        return f"<Link {self.capacity_bps / 1e6:.1f}Mbps {state}>"
