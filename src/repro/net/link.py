"""Serializing bottleneck link.

Drains an :class:`~repro.net.queue.AQMQueue` at a configurable bit rate and
hands each packet to a downstream sink after its serialization time plus a
fixed propagation delay.  Utilization accounting (busy time and delivered
bytes per sampling window) feeds Figure 18.

The rate may be changed mid-simulation (:meth:`Link.set_capacity`), which
is how the Figure 12 varying-link-capacity experiment (100:20:100 Mb/s) is
driven; a rate change takes effect from the next packet, as with a real
shaper reconfiguration.

Event batching
--------------
A busy link is the simulator's hot path: with one heap event per
transmission completion, a saturated 100 Mb/s bottleneck costs ~8600
push/pop round-trips per simulated second before any TCP or AQM work
happens.  When ``batching`` is enabled (the default) the link instead
drains back-to-back transmissions *inside a single dispatch*: at each
transmission-complete callback it keeps dequeuing and "serializing" the
next packet inline — computing consecutive completion times and advancing
the simulator clock via :meth:`~repro.sim.engine.Simulator.advance_to` —
for as long as

* the queue is non-empty and the link is up,
* the next completion sorts strictly before every foreign pending event
  (:meth:`~repro.sim.engine.Simulator.pending_before`), and
* the next completion does not pass the run's ``until`` bound
  (:attr:`~repro.sim.engine.Simulator.horizon`).

Only the batch-terminating completion is scheduled as a real event.
Because the batch stops the moment any other event could fire, the
callback order, every timestamp the queue/AQM/receivers observe, and all
floating-point arithmetic are identical to the unbatched schedule — a
fixed seed produces bit-exact ``digest()``-equal results either way, and
fault injection (a link flap or outage event) always lands *between*
batches, interrupting a drain exactly where the event-per-packet schedule
would have.

With a positive propagation delay the per-packet ``deliver`` callbacks
are coalesced the same way: deliveries accumulate on a delivery train
(one pending heap event, not one per packet) that drains inline through
consecutive — including same-timestamp — deliveries under the same
no-foreign-event rule.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Protocol, Tuple

from repro.net.packet import Packet
from repro.net.queue import AQMQueue
from repro.sim.engine import Simulator
from repro.units import BitsPerSecond, Seconds

__all__ = ["Link", "Sink"]


class Sink(Protocol):
    """Anything that can receive a packet from a link or pipe."""

    def deliver(self, packet: Packet) -> None: ...


class Link:
    """Point-to-point serializing link fed by a queue.

    Parameters
    ----------
    sim:
        Simulator instance.
    queue:
        The FIFO it drains; the link registers itself as the queue's
        wake-up callback so transmission restarts when a packet arrives
        into an empty queue.
    capacity_bps:
        Line rate in bits per second.
    sink:
        Downstream recipient of transmitted packets.
    prop_delay:
        One-way propagation delay in seconds appended after serialization.
    batching:
        Drain back-to-back transmissions in a single event dispatch (see
        module docstring).  Semantics are bit-exact either way; disable
        only for A/B measurement or debugging.
    """

    def __init__(
        self,
        sim: Simulator,
        queue: AQMQueue,
        capacity_bps: BitsPerSecond,
        sink: Optional[Sink] = None,
        prop_delay: Seconds = 0.0,
        batching: bool = True,
    ):
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive (got {capacity_bps})")
        if prop_delay < 0:
            raise ValueError(f"propagation delay cannot be negative (got {prop_delay})")
        self.sim = sim
        self.queue = queue
        self.capacity_bps = capacity_bps
        self.sink = sink
        self.prop_delay = prop_delay
        self.batching = batching
        self.busy = False
        self.down = False
        self.outages = 0
        self.busy_time = 0.0
        self.bytes_sent = 0
        self.packets_sent = 0
        #: Time the link last became busy / went idle — drives the
        #: idle-time read-out and keeps busy accounting auditable under
        #: batching (see :meth:`idle_time`).
        self._busy_since: Optional[float] = None
        self.idle_time = 0.0
        self._idle_since = sim.now
        #: Batching observability: dispatches that drained >1 packet,
        #: packets absorbed beyond the first, and the longest drain.
        self.batches = 0
        self.batched_packets = 0
        self.longest_batch = 1
        #: Outages that landed with a transmission (batched drain or
        #: single event) in flight: the flap interrupts the drain at its
        #: next break point, exactly as it would interrupt the
        #: event-per-packet schedule.
        self.interrupted_batches = 0
        self._in_batch = False
        #: Pending prop-delay deliveries: (time, seq, sink, packet) in
        #: ascending (time, seq) order, drained by a single pending
        #: stream-lane continuation.  Seqs are reserved at append time so
        #: tie-breaks match the unbatched per-delivery schedule exactly.
        self._train: Deque[Tuple[float, int, Sink, Packet]] = deque()
        self._train_pending = False
        self._route: Optional[Callable[[Packet], Sink]] = None
        queue.set_wakeup(self._on_queue_nonempty)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_capacity(self, capacity_bps: BitsPerSecond) -> None:
        """Change the line rate; also updates the queue's delay estimator."""
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive (got {capacity_bps})")
        self.capacity_bps = capacity_bps
        self.queue.estimator.set_capacity(capacity_bps)

    def set_router(self, route: Callable[[Packet], Sink]) -> None:
        """Install per-packet routing (used by the dumbbell topology to
        deliver each flow's packets to its own receiver-side pipe)."""
        self._route = route

    def set_down(self) -> None:
        """Take the link down (fault injection: an outage / flap window).

        A transmission already in progress completes — the bits are on the
        wire — but no new packet starts serializing until :meth:`set_up`.
        Arriving packets keep queuing (and tail-drop once the buffer
        fills), exactly as behind a dead interface.  If a batched drain is
        in flight, the drain stops at its next break point (the flap event
        itself forced the break), counted in :attr:`interrupted_batches`.
        Idempotent.
        """
        if not self.down:
            self.down = True
            self.outages += 1
            if self._in_batch or self.busy:
                # The outage landed with a transmission in flight: the
                # in-flight packet completes (bits on the wire) and the
                # drain — batched or not — stops right after it.
                self.interrupted_batches += 1

    def set_up(self) -> None:
        """Restore a downed link and resume draining the queue.  Idempotent."""
        if self.down:
            self.down = False
            if not self.busy:
                self._transmit_next()

    # ------------------------------------------------------------------
    # Utilization accounting
    # ------------------------------------------------------------------
    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of ``elapsed`` (default: sim time so far) spent serializing.

        ``busy_time`` integrates per-packet serialization times, so this
        is exact whether transmissions were dispatched one event each or
        drained in batches.
        """
        if elapsed is None:
            elapsed = self.sim.now
        return self.busy_time / elapsed if elapsed > 0 else 0.0

    def _mark_busy(self) -> None:
        if self._busy_since is None:
            self._busy_since = self.sim.now
            self.idle_time += self.sim.now - self._idle_since

    def _mark_idle(self) -> None:
        if self._busy_since is not None:
            self._busy_since = None
            self._idle_since = self.sim.now

    # ------------------------------------------------------------------
    # Transmission loop
    # ------------------------------------------------------------------
    def _on_queue_nonempty(self) -> None:
        if not self.busy and not self.down:
            self._transmit_next()

    def _transmit_next(self) -> None:
        """Start serializing the head-of-line packet (one heap event).

        This is the batch *seed*: it runs outside a transmission-complete
        dispatch (queue wake-up, link restoration), where other events
        scheduled for the current instant may still be pending, so the
        completion must go through the heap.  The drain loop in
        :meth:`_on_tx_complete` takes over from there.
        """
        if self.down:
            self.busy = False
            self._mark_idle()
            return
        packet = self.queue.dequeue()
        if packet is None:
            self.busy = False
            self._mark_idle()
            return
        self.busy = True
        self._mark_busy()
        tx_time = packet.size * 8.0 / self.capacity_bps
        self.busy_time += tx_time
        self.bytes_sent += packet.size
        self.packets_sent += 1
        sim = self.sim
        if self.batching:
            sim.stream_schedule(
                sim.now + tx_time, sim.reserve_seq(), self._on_tx_complete, packet
            )
        else:
            # Fire-and-forget: nobody cancels a completion, so the pooled
            # (no-handle) schedule avoids one Event allocation per packet.
            sim.call_later(tx_time, self._on_tx_complete, packet)

    def _on_tx_complete(self, packet: Packet) -> None:
        """Deliver ``packet`` and drain further back-to-back transmissions.

        Each loop iteration replays exactly one unbatched
        transmission-complete dispatch — deliver, then dequeue/account the
        next packet — but the next completion is handled inline (clock
        advanced, no heap traffic) whenever it provably precedes every
        other pending event.  See the module docstring for the invariant.
        """
        sim = self.sim
        drained = 1
        self._in_batch = True
        try:
            while True:
                self._deliver(packet)
                if self.down:
                    # An outage raised synchronously by a delivery
                    # callback: in-flight bits made it, nothing new starts.
                    self.busy = False
                    self._mark_idle()
                    break
                nxt = self.queue.dequeue()
                if nxt is None:
                    self.busy = False
                    self._mark_idle()
                    break
                tx_time = nxt.size * 8.0 / self.capacity_bps
                self.busy_time += tx_time
                self.bytes_sent += nxt.size
                self.packets_sent += 1
                complete_at = sim.now + tx_time
                # Reserve the completion event's seq exactly where the
                # unbatched path would schedule it, keeping the sequence
                # stream — and every same-timestamp tie-break — identical
                # in both modes.
                seq = sim.reserve_seq()
                horizon = sim.horizon
                if (
                    self.batching
                    and horizon is not None
                    and complete_at <= horizon
                    and not sim.pending_before(complete_at, seq)
                ):
                    sim.advance_to(complete_at)
                    packet = nxt
                    drained += 1
                    continue
                # An event intervenes (or no run horizon / batching off):
                # park this completion in the stream lane (batching) or
                # fall back to the per-packet schedule.
                if self.batching:
                    sim.stream_schedule(
                        complete_at, seq, self._on_tx_complete, nxt
                    )
                else:
                    sim.at_reserved(complete_at, seq, self._on_tx_complete, nxt)
                if drained > 1:
                    sim.note_batch_break()
                break
        finally:
            self._in_batch = False
        if drained > 1:
            self.batches += 1
            self.batched_packets += drained - 1
            if drained > self.longest_batch:
                self.longest_batch = drained

    def _deliver(self, packet: Packet) -> None:
        """Hand one serialized packet downstream at the current sim time."""
        sink = self._route(packet) if self._route is not None else self.sink
        if sink is None:
            return
        if self.prop_delay > 0:
            if self.batching:
                self._train_append(sink, packet)
            else:
                # Fire-and-forget: deliveries are never cancelled.
                self.sim.call_later(self.prop_delay, sink.deliver, packet)
        else:
            sink.deliver(packet)

    # ------------------------------------------------------------------
    # Delivery train (prop-delay deliver coalescing)
    # ------------------------------------------------------------------
    def _train_append(self, sink: Sink, packet: Packet) -> None:
        """Queue one prop-delay delivery; one heap event serves the train.

        Completion times are non-decreasing, so appending keeps the train
        sorted.  The entry's seq is reserved now — where the unbatched
        path would schedule its ``deliver`` event — so the (time, seq)
        identity of each delivery is mode-independent.
        """
        sim = self.sim
        self._train.append(
            (sim.now + self.prop_delay, sim.reserve_seq(), sink, packet)
        )
        if not self._train_pending:
            due, seq, _, _ = self._train[0]
            sim.stream_schedule(due, seq, self._drain_train)
            self._train_pending = True

    def _drain_train(self) -> None:
        """Deliver the due train entry, then coalesce successors inline.

        Applies the same rule as the transmission drain: a successor is
        delivered inline only while its (due, seq) sorts strictly before
        every foreign pending event and within the run horizon; otherwise
        the remainder is rescheduled as one event carrying the head
        entry's reserved seq — exactly the unbatched delivery event.
        """
        sim = self.sim
        train = self._train
        horizon = sim.horizon
        delivered = 0
        while train:
            due, seq, sink, packet = train[0]
            if delivered:
                # Foreign-event check, lexicographic on (time, seq):
                # train entries carry old reserved seqs, so a
                # same-timestamp foreign event may sort either way.
                if horizon is None or due > horizon:
                    break
                if sim.pending_before(due, seq):
                    sim.note_batch_break()
                    break
                sim.advance_to(due)
            train.popleft()
            delivered += 1
            sink.deliver(packet)
        if train:
            due, seq, _, _ = train[0]
            sim.stream_schedule(due, seq, self._drain_train)
            self._train_pending = True
        else:
            self._train_pending = False

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def register_metrics(self, registry: object) -> None:
        """Register the link's counters under the ``link.`` prefix.

        ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry`
        (duck-typed so the net layer never imports the observability
        layer); the provider runs at snapshot time, exporting end-of-run
        totals.
        """
        registry.register_provider("link", self._metrics_snapshot)  # type: ignore[attr-defined]

    def _metrics_snapshot(self) -> dict:
        """Flat metric values: throughput, batching and outage counters."""
        return {
            "capacity_bps": self.capacity_bps,
            "bytes_sent": self.bytes_sent,
            "packets_sent": self.packets_sent,
            "busy_time": self.busy_time,
            "idle_time": self.idle_time,
            "batches": self.batches,
            "batched_packets": self.batched_packets,
            "longest_batch": self.longest_batch,
            "interrupted_batches": self.interrupted_batches,
            "outages": self.outages,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "down" if self.down else ("busy" if self.busy else "idle")
        return f"<Link {self.capacity_bps / 1e6:.1f}Mbps {state}>"
