"""Simple endpoint sinks.

The dumbbell harness wires TCP senders/receivers directly, but unresponsive
traffic (UDP) and several tests need trivial endpoints: a sink that counts
what it absorbs, and a null sink.
"""

from __future__ import annotations

from typing import Callable

from repro.net.packet import Packet

__all__ = ["CountingSink", "NullSink", "CallbackSink"]


class CountingSink:
    """Absorbs packets, counting packets and bytes (per-flow optional)."""

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0
        self.per_flow_bytes: dict[int, int] = {}

    def deliver(self, packet: Packet) -> None:
        self.packets += 1
        self.bytes += packet.size
        self.per_flow_bytes[packet.flow_id] = (
            self.per_flow_bytes.get(packet.flow_id, 0) + packet.size
        )


class NullSink:
    """Absorbs and forgets."""

    def deliver(self, packet: Packet) -> None:  # noqa: D102 - trivially named
        pass


class CallbackSink:
    """Invokes a callback for every delivered packet."""

    def __init__(self, fn: Callable[[Packet], None]):
        self.fn = fn

    def deliver(self, packet: Packet) -> None:
        self.fn(packet)
