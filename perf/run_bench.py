#!/usr/bin/env python
"""Thin wrapper so `python perf/run_bench.py` works from a clean checkout.

Equivalent to `python -m repro bench ...`; adds src/ to sys.path itself
so no PYTHONPATH fiddling is needed.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def main() -> int:
    from repro.cli import main as cli_main

    return cli_main(["bench", *sys.argv[1:]])


if __name__ == "__main__":
    raise SystemExit(main())
