"""Setuptools shim for legacy editable installs.

The offline environment lacks the ``wheel`` package that PEP 660 editable
installs need, so ``pip install -e . --no-build-isolation --no-use-pep517``
falls back to this classic ``setup.py develop`` path.  All metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
